//! One-call transpilation pipeline: route, decompose, optimize, and fix
//! CNOT directions.
//!
//! [`SabreRouter::route`] returns the raw routing artifact (SWAPs kept
//! explicit so the permutation replay can verify it). Downstream users
//! usually want the finished hardware circuit instead; [`transpile`]
//! chains the full pipeline:
//!
//! 1. SABRE routing (optionally noise-aware),
//! 2. SWAP decomposition into the elementary gate set,
//! 3. peephole optimization ([`sabre_circuit::optimize`]) — routing
//!    deliberately only *adds* gates (paper §VIII); the optimizer then
//!    cancels the redundancy SWAP insertion creates,
//! 4. optional direction fixing for one-way couplings
//!    ([`crate::direction`]).
//!
//! [`SabreRouter::route`]: crate::SabreRouter::route

use sabre_circuit::optimize::optimize;
use sabre_circuit::Circuit;
use sabre_topology::direction::DirectionModel;
use sabre_topology::noise::NoiseModel;
use sabre_topology::CouplingGraph;

use crate::direction::fix_directions;
use crate::{Layout, RouteError, SabreConfig, SabreRouter};

/// Pipeline options; start from `TranspileOptions::default()` and override.
#[derive(Clone, Debug, Default)]
pub struct TranspileOptions {
    /// Router configuration (paper defaults).
    pub config: SabreConfig,
    /// Optional per-coupling noise model: routing becomes fidelity-aware.
    pub noise: Option<NoiseModel>,
    /// Optional direction constraints for one-way-CNOT hardware.
    pub direction: Option<DirectionModel>,
    /// Skip the peephole optimizer (it is on by default).
    pub skip_optimizer: bool,
}

/// Everything [`transpile`] produces.
#[derive(Clone, Debug)]
pub struct TranspileOutput {
    /// The finished hardware circuit: elementary gates only, peephole-
    /// optimized, direction-legal if a model was given.
    pub circuit: Circuit,
    /// Where each logical qubit starts.
    pub initial_layout: Layout,
    /// Where each logical qubit ends.
    pub final_layout: Layout,
    /// SWAPs the router inserted (×3 = gates before optimization).
    pub swaps_inserted: usize,
    /// Gates the peephole optimizer removed.
    pub gates_removed: usize,
    /// CNOTs flipped by the direction pass.
    pub cnots_flipped: usize,
}

impl TranspileOutput {
    /// Net gate overhead of the whole pipeline relative to the input.
    pub fn overhead(&self, original: &Circuit) -> isize {
        self.circuit.num_gates() as isize - original.num_gates() as isize
    }

    /// The pipeline output as a JSON object (counters, depth, and both
    /// layouts as logical→physical index arrays) — the serialization hook
    /// behind the serving layer's `/transpile_batch` responses. The gate
    /// list is not embedded; serialize `self.circuit` separately (e.g. via
    /// `sabre_qasm::to_qasm`) when the caller wants it.
    pub fn to_json(&self) -> sabre_json::JsonValue {
        sabre_json::JsonValue::object([
            ("num_gates", self.circuit.num_gates().into()),
            ("depth", self.circuit.depth().into()),
            ("swaps_inserted", self.swaps_inserted.into()),
            ("gates_removed", self.gates_removed.into()),
            ("cnots_flipped", self.cnots_flipped.into()),
            (
                "initial_layout",
                crate::result::layout_to_json(&self.initial_layout),
            ),
            (
                "final_layout",
                crate::result::layout_to_json(&self.final_layout),
            ),
        ])
    }
}

/// Runs the full pipeline. See the [module documentation](self) for the
/// stages.
///
/// The output circuit is verified internally against the routing artifact
/// stage by stage in debug builds; for release-grade assurance on small
/// registers, pass the output through
/// `sabre_verify::verify_semantics_small`.
///
/// # Errors
///
/// Propagates [`RouteError`] from router construction and routing.
pub fn transpile(
    circuit: &Circuit,
    graph: &CouplingGraph,
    options: &TranspileOptions,
) -> Result<TranspileOutput, RouteError> {
    let router = match &options.noise {
        Some(noise) => SabreRouter::with_noise(graph.clone(), options.config, noise)?,
        None => SabreRouter::new(graph.clone(), options.config)?,
    };
    let result = router.route(circuit)?;
    Ok(finish_routed(result.best, options))
}

/// The post-routing stages shared by [`transpile`] and the batch pipeline
/// ([`crate::parallel::transpile_batch`]): SWAP decomposition, peephole
/// optimization, and direction fixing.
pub(crate) fn finish_routed(
    routed: crate::RoutedCircuit,
    options: &TranspileOptions,
) -> TranspileOutput {
    let mut hardware = routed.physical.with_swaps_decomposed();
    let mut gates_removed = 0;
    if !options.skip_optimizer {
        let (optimized, report) = optimize(&hardware);
        gates_removed = report.gates_removed();
        hardware = optimized;
    }
    let mut cnots_flipped = 0;
    if let Some(model) = &options.direction {
        let (fixed, report) = fix_directions(&hardware, model);
        cnots_flipped = report.flipped_cx;
        hardware = fixed;
        if !options.skip_optimizer {
            // Direction sandwiches introduce adjacent H pairs on shared
            // wires; one more optimizer pass cleans them up.
            let (optimized, report) = optimize(&hardware);
            gates_removed += report.gates_removed();
            hardware = optimized;
        }
    }

    TranspileOutput {
        circuit: hardware,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        swaps_inserted: routed.num_swaps,
        gates_removed,
        cnots_flipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_circuit::Qubit;
    use sabre_topology::devices;
    use sabre_topology::direction::{ibm_qx5_directions, DirectionModel};

    fn workload(n: u32, rounds: u32) -> Circuit {
        let mut c = Circuit::new(n);
        let mut state = 0x2468_ACE0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % u64::from(n)) as u32
        };
        for _ in 0..rounds {
            let (a, b) = (next(), next());
            if a != b {
                c.cx(Qubit(a), Qubit(b));
            }
            c.h(Qubit(next()));
        }
        c
    }

    #[test]
    fn basic_pipeline_produces_elementary_compliant_circuit() {
        let device = devices::ibm_q20_tokyo();
        let circuit = workload(10, 60);
        let out = transpile(&circuit, device.graph(), &TranspileOptions::default()).unwrap();
        assert_eq!(out.circuit.num_swaps(), 0, "SWAPs are decomposed");
        for gate in &out.circuit {
            if let (a, Some(b)) = gate.qubits() {
                assert!(device.graph().are_coupled(a, b));
            }
        }
    }

    #[test]
    fn optimizer_reduces_routed_gate_count() {
        let device = devices::linear(6);
        let circuit = workload(6, 80);
        let raw = transpile(
            &circuit,
            device.graph(),
            &TranspileOptions {
                skip_optimizer: true,
                ..TranspileOptions::default()
            },
        )
        .unwrap();
        let optimized = transpile(&circuit, device.graph(), &TranspileOptions::default()).unwrap();
        assert!(optimized.circuit.num_gates() <= raw.circuit.num_gates());
        assert_eq!(
            raw.circuit.num_gates() - optimized.circuit.num_gates(),
            optimized.gates_removed.saturating_sub(raw.gates_removed)
        );
    }

    #[test]
    fn transpiled_output_is_semantically_faithful() {
        use sabre_verify::verify_semantics_small;
        let device = devices::linear(6);
        let circuit = workload(6, 40);
        let out = transpile(&circuit, device.graph(), &TranspileOptions::default()).unwrap();
        verify_semantics_small(
            &circuit,
            &out.circuit,
            out.initial_layout.logical_to_physical(),
            out.final_layout.logical_to_physical(),
        )
        .unwrap();
    }

    #[test]
    fn direction_stage_produces_legal_cnots_only() {
        let device = devices::ibm_qx5();
        let model = DirectionModel::one_way(device.graph(), &ibm_qx5_directions());
        let circuit = workload(8, 40);
        let out = transpile(
            &circuit,
            device.graph(),
            &TranspileOptions {
                direction: Some(model.clone()),
                ..TranspileOptions::default()
            },
        )
        .unwrap();
        for gate in &out.circuit {
            if let sabre_circuit::Gate::Two {
                kind: sabre_circuit::TwoQubitKind::Cx,
                a,
                b,
                ..
            } = *gate
            {
                assert!(model.allows_cx(a, b));
            }
        }
    }

    #[test]
    fn direction_fix_is_semantics_preserving_end_to_end() {
        use sabre_verify::verify_semantics_small;
        let device = devices::linear(5);
        let model = DirectionModel::one_way(device.graph(), &[(0, 1), (2, 1), (2, 3), (4, 3)]);
        let circuit = workload(5, 30);
        let out = transpile(
            &circuit,
            device.graph(),
            &TranspileOptions {
                direction: Some(model),
                ..TranspileOptions::default()
            },
        )
        .unwrap();
        verify_semantics_small(
            &circuit,
            &out.circuit,
            out.initial_layout.logical_to_physical(),
            out.final_layout.logical_to_physical(),
        )
        .unwrap();
    }

    #[test]
    fn noise_option_is_accepted() {
        let device = devices::ibm_q20_tokyo();
        let noise = sabre_topology::noise::NoiseModel::calibrated(device.graph(), 0.02, 3.0, 5);
        let circuit = workload(8, 30);
        let out = transpile(
            &circuit,
            device.graph(),
            &TranspileOptions {
                noise: Some(noise),
                config: SabreConfig::fast(),
                ..TranspileOptions::default()
            },
        )
        .unwrap();
        assert!(out.circuit.num_gates() >= circuit.num_gates() - out.gates_removed);
    }

    #[test]
    fn overhead_accounting() {
        let device = devices::complete(4);
        let circuit = workload(4, 20);
        let out = transpile(&circuit, device.graph(), &TranspileOptions::default()).unwrap();
        // Complete graph: no swaps; overhead can only be ≤ 0 (optimizer).
        assert_eq!(out.swaps_inserted, 0);
        assert!(out.overhead(&circuit) <= 0);
    }
}
