//! Device cache: preprocessed router state keyed by content fingerprints.
//!
//! [`SabreRouter::new`] pays the paper's §IV-A preprocessing — a
//! connectivity check plus two `O(N³)` Floyd–Warshall closures — on every
//! call, and the perfect-placement probe re-burns its backtracking budget
//! on every `route()` of a circuit it has already judged. Both costs are
//! per-*device* (respectively per-*interaction-graph*), not per-call, so a
//! service routing heavy traffic against a handful of hot devices should
//! pay them once. [`DeviceCache`] is that layer:
//!
//! - **Router acquisition** ([`DeviceCache::router`],
//!   [`DeviceCache::router_with_noise`]): preprocessed state is cached
//!   under [`CouplingGraph::fingerprint`] (and
//!   [`NoiseModel::fingerprint`] for the weighted matrix); a warm hit
//!   skips Floyd–Warshall entirely and hands out a router sharing the
//!   cached matrices via `Arc`.
//! - **Calibration refresh** ([`DeviceCache::refresh_noise`]): when a
//!   device's daily calibration lands, only the noise-weighted matrix is
//!   recomputed — the coupling graph, connectivity verdict, and hop
//!   matrices are reused.
//! - **Embedding verdicts** ([`EmbeddingVerdictCache`]): the probe's
//!   `Found`/`Impossible`/budget-exhausted outcome is cached per
//!   `(device, interaction graph, budget)`, so a non-embeddable circuit's
//!   second `route()` performs zero backtracking steps. The probe still
//!   runs *after* the restart search (see `assemble` in `sabre.rs`), so
//!   the first-traversal telemetry contract is untouched.
//!
//! Cached routing is **bit-identical** to uncached routing for a fixed
//! seed: the cache only ever reuses values the cold path would recompute
//! deterministically. Fingerprints are 64-bit content hashes; every hit
//! additionally verifies structural equality (cheap, `O(E)`) so even a
//! hash collision cannot alias two devices — the colliding entry is
//! simply bypassed.
//!
//! All methods take `&self` behind an [`RwLock`]; share one cache across
//! the rayon pool (or an entire service) with `Arc<DeviceCache>`.
//!
//! # Example
//!
//! ```
//! use sabre::{DeviceCache, SabreConfig};
//! use sabre_benchgen::qft;
//! use sabre_topology::devices;
//!
//! let cache = DeviceCache::new();
//! let tokyo = devices::ibm_q20_tokyo();
//!
//! // Cold: runs the O(N³) preprocessing and caches it.
//! let router = cache.router(tokyo.graph(), SabreConfig::paper())?;
//! let first = router.route(&qft::qft(5))?;
//!
//! // Warm: no Floyd–Warshall, just Arc clones of the cached matrices.
//! let router = cache.router(tokyo.graph(), SabreConfig::paper())?;
//! let second = router.route(&qft::qft(5))?;
//! assert_eq!(first.best, second.best);
//! assert_eq!(cache.stats().graph_hits, 1);
//! # Ok::<(), sabre::RouteError>(())
//! ```

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use sabre_circuit::interaction::InteractionGraph;
use sabre_topology::embedding::{self, Embedding};
use sabre_topology::noise::NoiseModel;
use sabre_topology::{CouplingGraph, DistanceMatrix, Qubit, WeightedDistanceMatrix};

use crate::plan::PlanCache;
use crate::sabre::noise_cost_matrix;
use crate::{RouteError, SabreConfig, SabreRouter};

/// Preprocessed state of one device, built once per coupling-graph
/// fingerprint: everything [`SabreRouter::new`] computes, plus any
/// noise-weighted matrices acquired so far.
#[derive(Debug)]
struct GraphEntry {
    graph: Arc<CouplingGraph>,
    dist: Arc<DistanceMatrix>,
    hops: Arc<WeightedDistanceMatrix>,
    /// Noise-weighted matrices keyed by [`NoiseModel::fingerprint`]; the
    /// model is stored alongside for collision verification.
    weighted: RwLock<HashMap<u64, (NoiseModel, Arc<WeightedDistanceMatrix>)>>,
    /// Calibration epoch, bumped by [`DeviceCache::refresh_noise`] so a
    /// concurrently computed matrix for a superseded calibration is not
    /// re-inserted after the refresh cleared it.
    noise_epoch: AtomicU64,
}

impl GraphEntry {
    /// The cold path. Delegates to [`SabreRouter::new`] so the cache can
    /// never drift from the uncached preprocessing — whatever `new`
    /// computes is, by construction, what a miss caches.
    fn build(graph: &CouplingGraph) -> Result<Self, RouteError> {
        let (graph, dist, hops) =
            SabreRouter::new(graph.clone(), SabreConfig::default())?.into_parts();
        Ok(GraphEntry {
            graph,
            dist,
            hops,
            weighted: RwLock::new(HashMap::new()),
            noise_epoch: AtomicU64::new(0),
        })
    }
}

/// Counter snapshot from [`DeviceCache::stats`]. Hits are cheap (`Arc`
/// clones); misses paid the full preprocessing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCacheStats {
    /// Router acquisitions served from a cached graph entry.
    pub graph_hits: u64,
    /// Acquisitions that had to run connectivity + Floyd–Warshall.
    pub graph_misses: u64,
    /// Noise-weighted matrix lookups served from cache.
    pub noise_hits: u64,
    /// Noise-weighted matrices computed (including refreshes).
    pub noise_misses: u64,
    /// Perfect-placement probe verdicts served from cache.
    pub embedding_hits: u64,
    /// Probe verdicts computed by backtracking search.
    pub embedding_misses: u64,
}

/// Thread-safe cache of fully preprocessed [`SabreRouter`] state, keyed
/// by device fingerprints. See the [module docs](self) for the design and
/// a usage example; `examples/device_cache.rs`-style service loops simply
/// hold one of these for the life of the process.
#[derive(Debug)]
pub struct DeviceCache {
    entries: RwLock<HashMap<u64, Arc<GraphEntry>>>,
    verdicts: Arc<EmbeddingVerdictCache>,
    plans: PlanCache,
    graph_hits: AtomicU64,
    graph_misses: AtomicU64,
    noise_hits: AtomicU64,
    noise_misses: AtomicU64,
}

impl Default for DeviceCache {
    fn default() -> Self {
        DeviceCache::with_plan_capacity(PlanCache::DEFAULT_CAPACITY)
    }
}

impl DeviceCache {
    /// An empty cache with the default routed-plan capacity
    /// ([`PlanCache::DEFAULT_CAPACITY`]).
    pub fn new() -> Self {
        DeviceCache::default()
    }

    /// An empty cache whose routed-plan layer holds at most `capacity`
    /// plans (`0` disables plan caching entirely — e.g. for workloads
    /// that need strict per-seed output reproducibility).
    pub fn with_plan_capacity(capacity: usize) -> Self {
        DeviceCache {
            entries: RwLock::new(HashMap::new()),
            verdicts: Arc::default(),
            plans: PlanCache::with_capacity(capacity),
            graph_hits: AtomicU64::new(0),
            graph_misses: AtomicU64::new(0),
            noise_hits: AtomicU64::new(0),
            noise_misses: AtomicU64::new(0),
        }
    }

    /// The routed-plan cache layer (see [`PlanCache`]): consult it before
    /// routing a circuit whose structure may have been routed before, and
    /// feed it finished routes so re-parameterized submissions rebind.
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// A router for `graph` with the hop-count heuristic, reusing cached
    /// preprocessing when this device (by content, not identity) has been
    /// seen before. Behaves exactly like [`SabreRouter::new`] — including
    /// its errors — but a warm acquisition is `O(E)` (fingerprint +
    /// structural verification) instead of `O(N³)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SabreRouter::new`].
    pub fn router(
        &self,
        graph: &CouplingGraph,
        config: SabreConfig,
    ) -> Result<SabreRouter, RouteError> {
        config
            .validate()
            .map_err(|reason| RouteError::InvalidConfig { reason })?;
        let entry = self.entry(graph)?;
        Ok(SabreRouter::from_parts(
            entry.graph.clone(),
            entry.dist.clone(),
            entry.hops.clone(),
            config,
            Some(self.verdicts.clone()),
        ))
    }

    /// A **noise-aware** router ([`SabreRouter::with_noise`] semantics):
    /// the weighted distance matrix is cached per
    /// `(graph, noise)` fingerprint pair, so re-acquiring a router for an
    /// unchanged calibration is free and a changed calibration recomputes
    /// only the weighted closure.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SabreRouter::new`].
    pub fn router_with_noise(
        &self,
        graph: &CouplingGraph,
        config: SabreConfig,
        noise: &NoiseModel,
    ) -> Result<SabreRouter, RouteError> {
        config
            .validate()
            .map_err(|reason| RouteError::InvalidConfig { reason })?;
        let entry = self.entry(graph)?;
        let cost = self.weighted_matrix(&entry, noise);
        Ok(SabreRouter::from_parts(
            entry.graph.clone(),
            entry.dist.clone(),
            cost,
            config,
            Some(self.verdicts.clone()),
        ))
    }

    /// Ingests a fresh calibration for `graph`: recomputes **only** the
    /// noise-weighted matrix (one weighted Floyd–Warshall), reusing the
    /// cached connectivity verdict, hop matrices, and embedding verdicts.
    /// Matrices for superseded calibrations are dropped so a long-running
    /// service's memory tracks the number of hot devices, not the number
    /// of calibration epochs.
    ///
    /// Subsequent [`DeviceCache::router_with_noise`] calls with this
    /// `noise` hit the warm path.
    ///
    /// # Errors
    ///
    /// [`RouteError::DisconnectedDevice`] if `graph` is disconnected (when
    /// the device was never cached, refresh builds its entry first).
    pub fn refresh_noise(
        &self,
        graph: &CouplingGraph,
        noise: &NoiseModel,
    ) -> Result<(), RouteError> {
        let entry = self.entry(graph)?;
        let cost = Arc::new(noise_cost_matrix(&entry.graph, noise));
        self.noise_misses.fetch_add(1, Ordering::Relaxed);
        let mut weighted = entry.weighted.write().expect("device cache poisoned");
        // Bump under the write lock: any acquisition that started its
        // computation against the old epoch will see the change and skip
        // re-inserting a superseded calibration.
        entry.noise_epoch.fetch_add(1, Ordering::Release);
        weighted.clear();
        weighted.insert(noise.fingerprint(), (noise.clone(), cost));
        Ok(())
    }

    /// The shared embedding-verdict store attached to every router this
    /// cache hands out.
    pub fn embedding_verdicts(&self) -> &Arc<EmbeddingVerdictCache> {
        &self.verdicts
    }

    /// Number of distinct devices currently cached.
    pub fn len(&self) -> usize {
        self.entries.read().expect("device cache poisoned").len()
    }

    /// Whether no device has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached device, embedding verdict, and routed plan.
    /// Counters are not reset.
    pub fn clear(&self) {
        self.entries.write().expect("device cache poisoned").clear();
        self.verdicts.clear();
        self.plans.clear();
    }

    /// A snapshot of the hit/miss counters (embedding counters come from
    /// the shared verdict store).
    pub fn stats(&self) -> DeviceCacheStats {
        DeviceCacheStats {
            graph_hits: self.graph_hits.load(Ordering::Relaxed),
            graph_misses: self.graph_misses.load(Ordering::Relaxed),
            noise_hits: self.noise_hits.load(Ordering::Relaxed),
            noise_misses: self.noise_misses.load(Ordering::Relaxed),
            embedding_hits: self.verdicts.hits(),
            embedding_misses: self.verdicts.misses(),
        }
    }

    /// The graph entry for `graph`, built on first sight. Preprocessing
    /// runs *outside* the write lock so concurrent misses on different
    /// devices do not serialize; if two threads race on the same device,
    /// the first insert wins and the loser's work is discarded (both are
    /// structurally identical, so results cannot differ).
    fn entry(&self, graph: &CouplingGraph) -> Result<Arc<GraphEntry>, RouteError> {
        let key = graph.fingerprint();
        if let Some(entry) = self
            .entries
            .read()
            .expect("device cache poisoned")
            .get(&key)
        {
            if *entry.graph == *graph {
                self.graph_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.clone());
            }
            // 64-bit fingerprint collision between distinct devices:
            // serve an uncached entry rather than alias them.
            self.graph_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(GraphEntry::build(graph)?));
        }
        self.graph_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(GraphEntry::build(graph)?);
        let mut entries = self.entries.write().expect("device cache poisoned");
        Ok(match entries.entry(key) {
            Entry::Vacant(slot) => slot.insert(built).clone(),
            // Raced with another insert: reuse it only if it really is
            // this device — a fingerprint-colliding different graph must
            // not be served (same guard as the read path above).
            Entry::Occupied(existing) if *existing.get().graph == *graph => existing.get().clone(),
            Entry::Occupied(_) => built,
        })
    }

    /// The weighted matrix for `(entry, noise)`, computed on first sight.
    fn weighted_matrix(
        &self,
        entry: &GraphEntry,
        noise: &NoiseModel,
    ) -> Arc<WeightedDistanceMatrix> {
        let key = noise.fingerprint();
        if let Some((cached_noise, cost)) = entry
            .weighted
            .read()
            .expect("device cache poisoned")
            .get(&key)
        {
            if cached_noise == noise {
                self.noise_hits.fetch_add(1, Ordering::Relaxed);
                return cost.clone();
            }
            // Noise-fingerprint collision: compute without caching.
            self.noise_misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(noise_cost_matrix(&entry.graph, noise));
        }
        self.noise_misses.fetch_add(1, Ordering::Relaxed);
        let epoch = entry.noise_epoch.load(Ordering::Acquire);
        let cost = Arc::new(noise_cost_matrix(&entry.graph, noise));
        let mut weighted = entry.weighted.write().expect("device cache poisoned");
        if entry.noise_epoch.load(Ordering::Acquire) != epoch {
            // A refresh_noise landed while we computed: this calibration
            // may be superseded, so hand it to the caller without caching
            // it (caching would undo the refresh's memory bound).
            return cost;
        }
        match weighted.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert((noise.clone(), cost.clone()));
                cost
            }
            // Raced with another insert: reuse it only for the identical
            // model; a fingerprint-colliding different calibration gets
            // the freshly computed matrix instead.
            Entry::Occupied(existing) if existing.get().0 == *noise => existing.get().1.clone(),
            Entry::Occupied(_) => cost,
        }
    }
}

/// A probe verdict in storable form; [`Embedding`] plus the
/// budget-exhausted case.
#[derive(Clone, Debug)]
enum CachedVerdict {
    /// The probe found this zero-SWAP placement.
    Found(Vec<Option<Qubit>>),
    /// No zero-SWAP placement exists (exact verdict).
    Impossible,
    /// The backtracking budget ran out before a verdict.
    Exhausted,
}

/// Shared store of perfect-placement probe outcomes, keyed by
/// `(device fingerprint, interaction-graph fingerprint, budget)`.
///
/// The budget is part of the key because a verdict is only guaranteed to
/// reproduce the uncached probe bit-for-bit at the *same* budget: a
/// `Found` obtained with a large budget might be unreachable under a
/// smaller one, and an exhaustion verdict says nothing about larger
/// budgets. Keying by device fingerprint makes one store safely shareable
/// across every device in a [`DeviceCache`], and — like the other cache
/// layers — every hit re-verifies the stored pattern and host
/// structurally, so a fingerprint collision degrades to a cache bypass,
/// never a wrong verdict.
///
/// Attach to a standalone router with
/// [`SabreRouter::with_embedding_cache`]:
///
/// ```
/// use std::sync::Arc;
/// use sabre::{cache::EmbeddingVerdictCache, SabreConfig, SabreRouter};
/// use sabre_circuit::{Circuit, Qubit};
/// use sabre_topology::devices;
///
/// let tokyo = devices::ibm_q20_tokyo();
/// let verdicts = Arc::new(EmbeddingVerdictCache::new());
/// let router = SabreRouter::new(tokyo.graph().clone(), SabreConfig::paper())?
///     .with_embedding_cache(verdicts.clone());
///
/// // K5 cannot embed into Tokyo: the first route pays the full
/// // backtracking search, the second reuses the Impossible verdict.
/// let mut k5 = Circuit::new(5);
/// for a in 0..5u32 {
///     for b in (a + 1)..5 {
///         k5.cx(Qubit(a), Qubit(b));
///     }
/// }
/// let first = router.route(&k5)?;
/// assert_eq!(verdicts.misses(), 1);
/// let second = router.route(&k5)?;
/// assert_eq!((verdicts.hits(), verdicts.misses()), (1, 1));
/// assert_eq!(first.best, second.best);
/// # Ok::<(), sabre::RouteError>(())
/// ```
#[derive(Debug, Default)]
pub struct EmbeddingVerdictCache {
    verdicts: RwLock<HashMap<(u64, u64, usize), VerdictEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A stored verdict plus the exact question it answers, so hits can
/// verify they are not serving a fingerprint collision. The host is an
/// `Arc` share of the router's own graph — thousands of verdicts against
/// one device reference a single graph allocation.
#[derive(Clone, Debug)]
struct VerdictEntry {
    pattern: InteractionGraph,
    host: Arc<CouplingGraph>,
    verdict: CachedVerdict,
}

impl EmbeddingVerdictCache {
    /// An empty store.
    pub fn new() -> Self {
        EmbeddingVerdictCache::default()
    }

    /// Drop-in replacement for
    /// [`embedding::find_embedding_within`] that consults the store
    /// first. A hit performs **zero** backtracking steps; a miss runs the
    /// search and records its outcome (including budget exhaustion, which
    /// is just as deterministic and just as expensive to rediscover).
    /// `host` is taken as an `Arc` so stored verdicts share one graph
    /// allocation per device.
    pub fn find_embedding(
        &self,
        pattern: &InteractionGraph,
        host: &Arc<CouplingGraph>,
        budget: usize,
    ) -> Option<Embedding> {
        let key = (host.fingerprint(), pattern.fingerprint(), budget);
        let mut collision = false;
        if let Some(entry) = self
            .verdicts
            .read()
            .expect("verdict cache poisoned")
            .get(&key)
        {
            if entry.pattern == *pattern && entry.host == *host {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return match &entry.verdict {
                    CachedVerdict::Found(map) => Some(Embedding::Found(map.clone())),
                    CachedVerdict::Impossible => Some(Embedding::Impossible),
                    CachedVerdict::Exhausted => None,
                };
            }
            // Fingerprint collision with a different question: answer
            // fresh and leave the stored verdict alone.
            collision = true;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = embedding::find_embedding_within(pattern, host, budget);
        if !collision {
            let verdict = match &outcome {
                Some(Embedding::Found(map)) => CachedVerdict::Found(map.clone()),
                Some(Embedding::Impossible) => CachedVerdict::Impossible,
                None => CachedVerdict::Exhausted,
            };
            self.verdicts
                .write()
                .expect("verdict cache poisoned")
                .insert(
                    key,
                    VerdictEntry {
                        pattern: pattern.clone(),
                        host: host.clone(),
                        verdict,
                    },
                );
        }
        outcome
    }

    /// Verdicts served from the store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Verdicts computed by backtracking search.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.verdicts.read().expect("verdict cache poisoned").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored verdict. Counters are not reset.
    pub fn clear(&self) {
        self.verdicts
            .write()
            .expect("verdict cache poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_circuit::{Circuit, Qubit};
    use sabre_topology::devices;

    fn chain(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.cx(Qubit(i), Qubit(i + 1));
        }
        c
    }

    #[test]
    fn warm_acquisition_hits_and_routes_identically() {
        let cache = DeviceCache::new();
        let device = devices::ibm_q20_tokyo();
        let config = SabreConfig::paper();
        let cold = cache.router(device.graph(), config).unwrap();
        let warm = cache.router(device.graph(), config).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.graph_hits, stats.graph_misses), (1, 1));
        assert_eq!(cache.len(), 1);

        let c = chain(10);
        let uncached = SabreRouter::new(device.graph().clone(), config).unwrap();
        let reference = uncached.route(&c).unwrap();
        for router in [&cold, &warm] {
            let result = router.route(&c).unwrap();
            assert_eq!(result.best, reference.best);
            assert_eq!(result.traversals, reference.traversals);
        }
    }

    #[test]
    fn structurally_equal_graphs_share_an_entry() {
        let cache = DeviceCache::new();
        let a = CouplingGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        // Same device, scrambled construction order with duplicates.
        let b = CouplingGraph::from_edges(4, [(3, 2), (1, 0), (2, 1), (0, 1)]).unwrap();
        cache.router(&a, SabreConfig::fast()).unwrap();
        cache.router(&b, SabreConfig::fast()).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().graph_hits, 1);
    }

    #[test]
    fn different_graphs_get_different_entries() {
        let cache = DeviceCache::new();
        cache
            .router(devices::linear(5).graph(), SabreConfig::fast())
            .unwrap();
        cache
            .router(devices::ring(5).graph(), SabreConfig::fast())
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().graph_hits, 0);
    }

    #[test]
    fn invalid_inputs_error_like_the_uncached_path() {
        let cache = DeviceCache::new();
        let disconnected = CouplingGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            cache
                .router(&disconnected, SabreConfig::fast())
                .unwrap_err(),
            RouteError::DisconnectedDevice
        );
        assert!(cache.is_empty(), "failures must not be cached");

        let bad_config = SabreConfig {
            num_traversals: 2,
            ..SabreConfig::default()
        };
        assert!(matches!(
            cache.router(devices::linear(3).graph(), bad_config),
            Err(RouteError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn noise_matrices_cache_per_fingerprint() {
        let cache = DeviceCache::new();
        let device = devices::ibm_q20_tokyo();
        let noise_a = NoiseModel::calibrated(device.graph(), 0.02, 4.0, 1);
        let noise_b = NoiseModel::calibrated(device.graph(), 0.02, 4.0, 2);
        cache
            .router_with_noise(device.graph(), SabreConfig::fast(), &noise_a)
            .unwrap();
        cache
            .router_with_noise(device.graph(), SabreConfig::fast(), &noise_a)
            .unwrap();
        cache
            .router_with_noise(device.graph(), SabreConfig::fast(), &noise_b)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.noise_hits, stats.noise_misses), (1, 2));
        // One underlying device entry serves all noise variants.
        assert_eq!((stats.graph_hits, stats.graph_misses), (2, 1));
    }

    #[test]
    fn cached_noise_routing_matches_uncached() {
        let cache = DeviceCache::new();
        let device = devices::ibm_q20_tokyo();
        let noise = NoiseModel::calibrated(device.graph(), 0.02, 4.0, 3);
        let config = SabreConfig::fast();
        let c = chain(8);
        let reference = SabreRouter::with_noise(device.graph().clone(), config, &noise)
            .unwrap()
            .route(&c)
            .unwrap();
        for _ in 0..2 {
            let result = cache
                .router_with_noise(device.graph(), config, &noise)
                .unwrap()
                .route(&c)
                .unwrap();
            assert_eq!(result.best, reference.best);
        }
    }

    #[test]
    fn refresh_noise_replaces_stale_calibrations() {
        let cache = DeviceCache::new();
        let device = devices::ibm_q20_tokyo();
        let old = NoiseModel::calibrated(device.graph(), 0.02, 4.0, 1);
        let new = NoiseModel::calibrated(device.graph(), 0.02, 4.0, 2);
        cache
            .router_with_noise(device.graph(), SabreConfig::fast(), &old)
            .unwrap();
        cache.refresh_noise(device.graph(), &new).unwrap();
        // The refreshed calibration is warm...
        cache
            .router_with_noise(device.graph(), SabreConfig::fast(), &new)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.noise_hits, 1);
        // ...and the graph preprocessing ran exactly once overall.
        assert_eq!(stats.graph_misses, 1);
    }

    #[test]
    fn clear_empties_devices_and_verdicts() {
        let cache = DeviceCache::new();
        let device = devices::ibm_q20_tokyo();
        let router = cache.router(device.graph(), SabreConfig::paper()).unwrap();
        router.route(&chain(6)).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.embedding_verdicts().is_empty());
    }
}
