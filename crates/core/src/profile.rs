//! The routing-phase profiler behind [`SabreConfig::profile`]: *why* the
//! search spent its steps, decomposed into the paper's cost centers.
//!
//! SABRE's hot loop has three structurally distinct phases per search
//! step — front-layer maintenance (the `Execute_gate_list` drain of
//! Algorithm 1), the extended-set BFS (§IV-D look-ahead), and the
//! candidate sweep over the delta scorer — and their relative weight is
//! strongly topology- and circuit-dependent. [`RouteProfile`] reports
//! per-phase wall time plus the event counters the heuristic's dynamics
//! expose (candidates scored, decay resets, forced routings, per-
//! traversal step counts).
//!
//! # Bit-identity contract
//!
//! Profiling must never change the routed output. The collector is an
//! enum whose disabled variant does nothing: every instrumentation site
//! in `route_pass_prepared` costs one predictable branch and no clock
//! read ([`sabre_trace::SpanClock::start`] on an `OFF` clock), and no
//! value the search computes ever depends on collector state.
//! `tests/hot_loop_equivalence.rs` interleaves profile-on and
//! profile-off routes and pins both against `sabre::reference`.
//!
//! [`SabreConfig::profile`]: crate::SabreConfig::profile

use sabre_json::JsonValue;
use sabre_trace::{Span, SpanClock};

/// Aggregated hot-loop telemetry for one routing call: phase wall times
/// and event counters summed over every profiled traversal of every
/// restart, in restart order. Returned as
/// [`SabreResult::profile`](crate::SabreResult::profile) when
/// [`SabreConfig::profile`](crate::SabreConfig::profile) is set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteProfile {
    /// Traversals profiled (restarts × traversals for a full route).
    pub traversals: u64,
    /// Search steps across all profiled traversals — one per inserted
    /// SWAP, forced routings included.
    pub search_steps: u64,
    /// Nanoseconds in front-layer maintenance: the execute-drain loop
    /// plus the front rebuild.
    pub front_ns: u64,
    /// Nanoseconds in the extended-set BFS.
    pub extended_set_ns: u64,
    /// Nanoseconds in candidate collection, delta scoring, and the
    /// tie-breaking pick.
    pub scoring_ns: u64,
    /// Candidate SWAPs evaluated by the delta scorer.
    pub candidates_scored: u64,
    /// Decay-table resets (after an executed gate, on the reset
    /// interval, or after a forced routing).
    pub decay_resets: u64,
    /// Livelock-guard forced routings.
    pub forced_routings: u64,
    /// Search steps of each profiled traversal, in execution order.
    pub per_traversal_steps: Vec<u64>,
}

impl RouteProfile {
    /// Total instrumented hot-loop time: the three phase counters.
    /// Always ≤ the routing call's `elapsed` (preprocessing, layout
    /// draws, and result assembly are outside the loop).
    pub fn hot_loop_ns(&self) -> u64 {
        self.front_ns + self.extended_set_ns + self.scoring_ns
    }

    /// Folds another profile into this one (restart-order aggregation:
    /// counters add, per-traversal steps append).
    pub fn merge(&mut self, other: &RouteProfile) {
        self.traversals += other.traversals;
        self.search_steps += other.search_steps;
        self.front_ns += other.front_ns;
        self.extended_set_ns += other.extended_set_ns;
        self.scoring_ns += other.scoring_ns;
        self.candidates_scored += other.candidates_scored;
        self.decay_resets += other.decay_resets;
        self.forced_routings += other.forced_routings;
        self.per_traversal_steps
            .extend_from_slice(&other.per_traversal_steps);
    }

    /// The profile as a JSON object — the `"profile"` payload of a
    /// `/route?profile=true` response.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("traversals", self.traversals.into()),
            ("search_steps", self.search_steps.into()),
            ("front_ns", self.front_ns.into()),
            ("extended_set_ns", self.extended_set_ns.into()),
            ("scoring_ns", self.scoring_ns.into()),
            ("hot_loop_ns", self.hot_loop_ns().into()),
            ("candidates_scored", self.candidates_scored.into()),
            ("decay_resets", self.decay_resets.into()),
            ("forced_routings", self.forced_routings.into()),
            (
                "per_traversal_steps",
                self.per_traversal_steps
                    .iter()
                    .map(|&s| JsonValue::from(s))
                    .collect(),
            ),
        ])
    }
}

/// The collector a traversal writes into: a no-op when profiling is off.
/// Each instrumentation site is `#[inline]` and branches on the variant
/// — the disabled path never reads the clock or touches memory beyond
/// the discriminant.
#[derive(Clone, Debug)]
pub(crate) enum ProfileCollector {
    /// Profiling disabled: every method is a no-op.
    Off,
    /// Profiling enabled: accumulate into the carried profile.
    On(RouteProfile),
}

impl ProfileCollector {
    pub(crate) fn new(enabled: bool) -> Self {
        if enabled {
            ProfileCollector::On(RouteProfile::default())
        } else {
            ProfileCollector::Off
        }
    }

    /// The span clock phase boundaries start from: `OFF` hands out dead
    /// spans without reading the clock.
    #[inline]
    pub(crate) fn clock(&self) -> SpanClock {
        match self {
            ProfileCollector::Off => SpanClock::OFF,
            ProfileCollector::On(_) => SpanClock::ON,
        }
    }

    #[inline]
    pub(crate) fn add_front(&mut self, span: Span) {
        if let ProfileCollector::On(p) = self {
            p.front_ns += span.elapsed_ns();
        }
    }

    #[inline]
    pub(crate) fn add_extended_set(&mut self, span: Span) {
        if let ProfileCollector::On(p) = self {
            p.extended_set_ns += span.elapsed_ns();
        }
    }

    #[inline]
    pub(crate) fn add_scoring(&mut self, span: Span, candidates: usize) {
        if let ProfileCollector::On(p) = self {
            p.scoring_ns += span.elapsed_ns();
            p.candidates_scored += candidates as u64;
        }
    }

    /// Closes out one traversal with its final counters.
    #[inline]
    pub(crate) fn finish_traversal(&mut self, steps: usize, forced: usize, decay_resets: u64) {
        if let ProfileCollector::On(p) = self {
            p.traversals += 1;
            p.search_steps += steps as u64;
            p.forced_routings += forced as u64;
            p.decay_resets += decay_resets;
            p.per_traversal_steps.push(steps as u64);
        }
    }

    /// The accumulated profile, if one was collected.
    pub(crate) fn take(self) -> Option<RouteProfile> {
        match self {
            ProfileCollector::Off => None,
            ProfileCollector::On(p) => Some(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_yields_nothing() {
        let mut c = ProfileCollector::new(false);
        assert!(!c.clock().is_enabled());
        let span = c.clock().start();
        c.add_front(span);
        c.add_scoring(span, 17);
        c.finish_traversal(5, 1, 2);
        assert_eq!(c.take(), None);
    }

    #[test]
    fn enabled_collector_accumulates_counters() {
        let mut c = ProfileCollector::new(true);
        assert!(c.clock().is_enabled());
        c.add_scoring(c.clock().start(), 12);
        c.add_scoring(c.clock().start(), 8);
        c.finish_traversal(9, 0, 3);
        c.finish_traversal(4, 1, 1);
        let p = c.take().expect("profile collected");
        assert_eq!(p.traversals, 2);
        assert_eq!(p.search_steps, 13);
        assert_eq!(p.candidates_scored, 20);
        assert_eq!(p.decay_resets, 4);
        assert_eq!(p.forced_routings, 1);
        assert_eq!(p.per_traversal_steps, vec![9, 4]);
    }

    #[test]
    fn merge_adds_counters_and_appends_traversals() {
        let mut a = RouteProfile {
            traversals: 1,
            search_steps: 10,
            front_ns: 100,
            extended_set_ns: 50,
            scoring_ns: 200,
            candidates_scored: 40,
            decay_resets: 3,
            forced_routings: 0,
            per_traversal_steps: vec![10],
        };
        let b = RouteProfile {
            traversals: 2,
            search_steps: 6,
            front_ns: 30,
            extended_set_ns: 20,
            scoring_ns: 60,
            candidates_scored: 25,
            decay_resets: 1,
            forced_routings: 1,
            per_traversal_steps: vec![2, 4],
        };
        a.merge(&b);
        assert_eq!(a.traversals, 3);
        assert_eq!(a.search_steps, 16);
        assert_eq!(a.hot_loop_ns(), 130 + 70 + 260);
        assert_eq!(a.per_traversal_steps, vec![10, 2, 4]);
    }

    #[test]
    fn profile_to_json_round_trips() {
        let p = RouteProfile {
            traversals: 3,
            search_steps: 21,
            front_ns: 1_000,
            extended_set_ns: 2_000,
            scoring_ns: 3_000,
            candidates_scored: 84,
            decay_resets: 5,
            forced_routings: 0,
            per_traversal_steps: vec![7, 7, 7],
        };
        let json = p.to_json();
        assert_eq!(json.get("search_steps").unwrap().as_u64(), Some(21));
        assert_eq!(json.get("hot_loop_ns").unwrap().as_u64(), Some(6_000));
        let steps: Vec<u64> = json
            .get("per_traversal_steps")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(steps, vec![7, 7, 7]);
        let text = json.to_compact();
        assert_eq!(JsonValue::parse(&text).unwrap(), json);
    }
}
