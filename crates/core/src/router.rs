//! One traversal of the SWAP-based heuristic search — paper Algorithm 1.
//!
//! [`route_pass`] scans a circuit's DAG from the front layer to the end,
//! executing gates the moment their mapped endpoints are coupled and
//! otherwise inserting the SWAP that minimizes the heuristic cost
//! function. The bidirectional driver in [`crate::SabreRouter`] calls this
//! once per traversal; it is public so downstream users can route with a
//! fixed initial mapping of their own.
//!
//! The inner loop runs on the incremental engine of the crate-private
//! `search` module: delta-scored candidates over a persistent
//! `SearchState`, zero heap allocations per steady-state search step. The
//! original engine survives verbatim in [`crate::reference`] as the
//! differential-testing and benchmarking baseline;
//! `tests/hot_loop_equivalence.rs` pins the two to identical output.

use rand::rngs::StdRng;
use rand::Rng;
use sabre_circuit::{Circuit, DependencyDag, ExecutionFrontier, Qubit};
use sabre_topology::{CouplingGraph, WeightedDistanceMatrix};

use crate::profile::ProfileCollector;
use crate::search::SearchState;
use crate::{Layout, RoutedCircuit, SabreConfig};

/// Floating-point slack when collecting equally scored SWAP candidates for
/// random tie-breaking.
pub(crate) const SCORE_EPSILON: f64 = 1e-12;

/// Everything immutable one traversal needs, bundled so the driver can
/// prepare it once (per restart, per direction) and run many passes
/// against it.
#[derive(Clone, Copy)]
pub(crate) struct PassContext<'a> {
    /// The circuit being traversed (already reversed for backward passes).
    pub(crate) circuit: &'a Circuit,
    /// The device coupling graph.
    pub(crate) graph: &'a CouplingGraph,
    /// The distance matrix `D` steering the heuristic.
    pub(crate) dist: &'a WeightedDistanceMatrix,
    /// The circuit's dependency DAG (rebuildable from `circuit`, cached
    /// here so repeated traversals of one circuit share it).
    pub(crate) dag: &'a DependencyDag,
    /// Search configuration.
    pub(crate) config: &'a SabreConfig,
}

/// Routes `circuit` through one full traversal (Algorithm 1).
///
/// `initial_layout` must be a bijection over the device size. The returned
/// [`RoutedCircuit`] contains the emitted physical circuit, the final
/// mapping `π_f`, and search telemetry.
///
/// # Panics
///
/// Panics if the layout size differs from the device size or the circuit
/// uses more qubits than the device has. The public [`crate::SabreRouter`]
/// validates these up front and returns errors instead.
pub fn route_pass(
    circuit: &Circuit,
    graph: &CouplingGraph,
    dist: &WeightedDistanceMatrix,
    initial_layout: Layout,
    config: &SabreConfig,
    rng: &mut StdRng,
) -> RoutedCircuit {
    let dag = DependencyDag::new(circuit);
    let mut state = SearchState::new(graph);
    let ctx = PassContext {
        circuit,
        graph,
        dist,
        dag: &dag,
        config,
    };
    // The single-pass entry point has no channel to return a profile, so
    // it always runs the disabled collector — `SabreConfig::profile` is
    // honored by the multi-restart [`crate::SabreRouter`] pipeline.
    route_pass_prepared(
        &ctx,
        initial_layout,
        rng,
        &mut state,
        &mut ProfileCollector::Off,
    )
}

/// [`route_pass`] against caller-prepared context and scratch — the form
/// the multi-restart driver uses so the DAG is built once per circuit and
/// the [`SearchState`] buffers persist across traversals. Phase timings
/// and search-dynamics counters accumulate into `collector`
/// ([`ProfileCollector::Off`] is free: one dead branch per boundary).
pub(crate) fn route_pass_prepared(
    ctx: &PassContext<'_>,
    initial_layout: Layout,
    rng: &mut StdRng,
    state: &mut SearchState,
    collector: &mut ProfileCollector,
) -> RoutedCircuit {
    let PassContext {
        circuit,
        graph,
        dist,
        dag,
        config,
    } = *ctx;
    let n_phys = graph.num_qubits();
    assert_eq!(
        initial_layout.len(),
        n_phys as usize,
        "layout must cover every physical qubit"
    );
    assert!(
        circuit.num_qubits() <= n_phys,
        "circuit does not fit on the device"
    );

    let mut frontier = ExecutionFrontier::new(dag);
    let mut layout = initial_layout.clone();
    let mut out = Circuit::with_name(n_phys, circuit.name());
    let mut decay = DecayState::new(n_phys as usize, config);
    let mut swaps_since_progress: usize = 0;
    let mut num_swaps = 0usize;
    let mut search_steps = 0usize;
    let mut forced_routings = 0usize;
    // Incremental front-layer maintenance: when a selected SWAP leaves
    // every front gate still uncoupled, nothing can execute, so the front
    // (and with it the extended set, which depends only on front
    // membership and the DAG, never on the layout) is provably unchanged
    // — the execute-drain scan, front rebuild, and extended-set BFS are
    // all skipped. Only gates with a physical endpoint on the swapped
    // pair can change executability, so the dirtiness check is O(|F|).
    let mut front_dirty = true;
    // Phase spans: dead (no clock read) unless the collector is On.
    let clock = collector.clock();

    loop {
        if front_dirty {
            let front_span = clock.start();
            // Execute every gate that is logically ready and physically
            // executable, repeating until the frontier stalls (the
            // `Execute_gate_list` loop of Algorithm 1). The snapshot is
            // taken into a reused buffer — same iteration order as the
            // seed's per-pass `ready().to_vec()` clone, no allocation.
            loop {
                let mut executed_any = false;
                state.ready_snapshot.clear();
                state.ready_snapshot.extend_from_slice(frontier.ready());
                for &idx in &state.ready_snapshot {
                    let gate = &circuit.gates()[idx];
                    match gate.qubits() {
                        // Single-qubit gates never block: emit on the wire
                        // the logical qubit currently occupies (§IV-A).
                        (_q, None) => {
                            out.push(gate.map_qubits(|l| layout.phys_of(l)));
                            frontier.retire(dag, idx);
                            executed_any = true;
                        }
                        (a, Some(b)) => {
                            let (pa, pb) = (layout.phys_of(a), layout.phys_of(b));
                            if graph.are_coupled(pa, pb) {
                                out.push(gate.map_qubits(|l| layout.phys_of(l)));
                                frontier.retire(dag, idx);
                                executed_any = true;
                                // Paper §V: decay resets after a CNOT executes.
                                decay.on_gate_executed();
                                swaps_since_progress = 0;
                            }
                        }
                    }
                }
                if !executed_any {
                    break;
                }
            }
            if frontier.is_complete() {
                collector.add_front(front_span);
                break;
            }

            // Front layer F: the ready-but-blocked two-qubit gates.
            state.front.clear();
            state.front.extend(
                frontier
                    .ready()
                    .iter()
                    .copied()
                    .filter(|&i| circuit.gates()[i].is_two_qubit()),
            );
            debug_assert!(
                !state.front.is_empty(),
                "stalled frontier must contain a blocked two-qubit gate"
            );
            collector.add_front(front_span);
        }

        // Livelock guard (never fires with the paper configuration; see
        // DESIGN.md implementation notes). Checked every iteration, clean
        // or dirty — the guard is the termination proof.
        let limit = 3 * n_phys as usize + config.livelock_slack;
        if swaps_since_progress >= limit {
            forced_routings += 1;
            let inserted = force_route(circuit, graph, &mut layout, &mut out, state.front[0]);
            num_swaps += inserted;
            // Forced SWAPs are search work and must show up in the
            // telemetry, and the heuristic state they invalidate (§V decay
            // accumulated on pre-force positions) must not leak into the
            // post-force search.
            search_steps += inserted;
            decay.on_forced_route();
            swaps_since_progress = 0;
            front_dirty = true;
            continue;
        }

        if front_dirty {
            let extended_span = clock.start();
            dag.extended_set_with(
                circuit,
                &state.front,
                config.extended_set_size,
                &mut state.extended_scratch,
                &mut state.extended,
            );
            collector.add_extended_set(extended_span);
        }

        let scoring_span = clock.start();
        state
            .incidence
            .prepare(circuit, dist, &layout, &state.front, &state.extended);
        let candidates = state
            .candidates
            .collect(circuit, graph, &layout, &state.front);
        debug_assert!(
            !candidates.is_empty(),
            "connected device always has candidates"
        );

        // Delta-scored sweep: each candidate costs O(incident gates), not
        // O(|F| + |E|), and the layout is never touched.
        let mut best_score = f64::INFINITY;
        state.best.clear();
        for &swap in candidates {
            let score = state.incidence.score(dist, config, decay.values(), swap);
            if score < best_score - SCORE_EPSILON {
                best_score = score;
                state.best.clear();
                state.best.push(swap);
            } else if (score - best_score).abs() <= SCORE_EPSILON {
                state.best.push(swap);
            }
        }
        let (sa, sb) = state.best[rng.gen_range(0..state.best.len())];
        collector.add_scoring(scoring_span, candidates.len());

        // Commit: emit the SWAP, update π, bump decay.
        out.swap(sa, sb);
        layout.swap_physical(sa, sb);
        num_swaps += 1;
        search_steps += 1;
        swaps_since_progress += 1;
        decay.on_swap_selected(sa, sb);

        // The front changes only if the SWAP made a front gate executable.
        // At a stall every ready gate is a blocked two-qubit gate (the
        // drain retires one-qubit gates unconditionally), and a gate
        // neither of whose endpoints sits on the swapped pair kept both
        // physical positions — still blocked. So: dirty ⇔ some touched
        // front gate is now coupled.
        front_dirty = state.front.iter().any(|&idx| {
            let (a, b) = circuit.gates()[idx].qubits();
            let b = b.expect("front gates are two-qubit");
            let (pa, pb) = (layout.phys_of(a), layout.phys_of(b));
            (pa == sa || pa == sb || pb == sa || pb == sb) && graph.are_coupled(pa, pb)
        });
    }

    debug_assert!(layout.is_consistent());
    collector.finish_traversal(search_steps, forced_routings, decay.resets);
    RoutedCircuit {
        physical: out,
        initial_layout,
        final_layout: layout,
        num_swaps,
        search_steps,
        forced_routings,
    }
}

/// The per-qubit decay bookkeeping of paper §V: recently swapped qubits
/// are de-prioritized (`value > 1`), and all values reset after a gate
/// executes, after `decay_reset_interval` consecutive SWAP selections, or
/// after a forced routing invalidates the accumulated state.
pub(crate) struct DecayState {
    values: Vec<f64>,
    swaps_since_reset: u32,
    delta: f64,
    reset_interval: u32,
    /// How many times the table reset — search-dynamics telemetry for
    /// the [`crate::RouteProfile`] collector. Always counted (one `u64`
    /// increment inside a loop that already touches every value), never
    /// read by the search itself.
    pub(crate) resets: u64,
}

impl DecayState {
    pub(crate) fn new(n_phys: usize, config: &SabreConfig) -> Self {
        DecayState {
            values: vec![1.0; n_phys],
            swaps_since_reset: 0,
            delta: config.decay_delta,
            reset_interval: config.decay_reset_interval,
            resets: 0,
        }
    }

    pub(crate) fn values(&self) -> &[f64] {
        &self.values
    }

    fn reset(&mut self) {
        for v in &mut self.values {
            *v = 1.0;
        }
        self.swaps_since_reset = 0;
        self.resets += 1;
    }

    /// A two-qubit gate executed: the search made real progress.
    pub(crate) fn on_gate_executed(&mut self) {
        self.reset();
    }

    /// A SWAP was selected: bump its endpoints, reset on the interval.
    pub(crate) fn on_swap_selected(&mut self, a: Qubit, b: Qubit) {
        self.values[a.index()] += self.delta;
        self.values[b.index()] += self.delta;
        self.swaps_since_reset += 1;
        if self.swaps_since_reset >= self.reset_interval {
            self.reset();
        }
    }

    /// The livelock guard force-routed a gate: every qubit on the forced
    /// path moved, so decay accumulated against the old placement is
    /// stale — restart clean (the forced gate executes next iteration,
    /// which would reset anyway; doing it here keeps the invariant even
    /// when the forced gate's successors stall first).
    pub(crate) fn on_forced_route(&mut self) {
        self.reset();
    }
}

/// Fallback progress guarantee: walk the first blocked gate's control
/// along a shortest path until adjacent to its target. Returns the number
/// of SWAPs inserted.
pub(crate) fn force_route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    layout: &mut Layout,
    out: &mut Circuit,
    gate_idx: usize,
) -> usize {
    let (a, b) = circuit.gates()[gate_idx].qubits();
    let b = b.expect("forced gate is two-qubit");
    let (pa, pb) = (layout.phys_of(a), layout.phys_of(b));
    let path = graph
        .shortest_path(pa, pb)
        .expect("router requires a connected device");
    // Move the qubit at `pa` down the path until one hop from `pb`.
    let mut inserted = 0;
    for window in path.windows(2).take(path.len().saturating_sub(2)) {
        out.swap(window[0], window[1]);
        layout.swap_physical(window[0], window[1]);
        inserted += 1;
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::CandidateScratch;
    use rand::SeedableRng;
    use sabre_topology::devices;

    fn route_identity(
        circuit: &Circuit,
        graph: &CouplingGraph,
        config: &SabreConfig,
    ) -> RoutedCircuit {
        let dist = WeightedDistanceMatrix::hops(graph);
        let mut rng = StdRng::seed_from_u64(config.seed);
        route_pass(
            circuit,
            graph,
            &dist,
            Layout::identity(graph.num_qubits()),
            config,
            &mut rng,
        )
    }

    /// Every two-qubit gate of the output must act on coupled qubits.
    fn assert_compliant(routed: &Circuit, graph: &CouplingGraph) {
        for gate in routed {
            if let (a, Some(b)) = gate.qubits() {
                assert!(graph.are_coupled(a, b), "gate {gate} on uncoupled pair");
            }
        }
    }

    #[test]
    fn already_executable_circuit_needs_no_swaps() {
        let g = devices::linear(4);
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(2), Qubit(3));
        let r = route_identity(&c, g.graph(), &SabreConfig::fast());
        assert_eq!(r.num_swaps, 0);
        assert_eq!(r.physical.num_gates(), 3);
        assert_eq!(r.final_layout, Layout::identity(4));
    }

    #[test]
    fn figure3_example_needs_one_swap() {
        // Paper Figure 3: square device, 6-CNOT circuit, identity start.
        // One SWAP suffices (the paper inserts SWAP q1,q2).
        let g = CouplingGraph::from_edges(4, [(0, 1), (1, 3), (3, 2), (2, 0)]).unwrap();
        let (q1, q2, q3, q4) = (Qubit(0), Qubit(1), Qubit(2), Qubit(3));
        let mut c = Circuit::new(4);
        c.cx(q1, q2);
        c.cx(q3, q4);
        c.cx(q2, q4);
        c.cx(q2, q3);
        c.cx(q3, q4);
        c.cx(q1, q4);
        let r = route_identity(&c, &g, &SabreConfig::fast());
        assert_compliant(&r.physical, &g);
        assert_eq!(r.num_swaps, 1, "paper achieves this with exactly one SWAP");
        assert_eq!(r.added_gates(), 3);
        assert_eq!(r.decomposed().num_gates(), 9);
    }

    #[test]
    fn distant_pair_on_line_gets_routed() {
        let g = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(Qubit(0), Qubit(4));
        let r = route_identity(&c, g.graph(), &SabreConfig::fast());
        assert_compliant(&r.physical, g.graph());
        // Distance 4 ⇒ 3 SWAPs needed; heuristic must find that minimum on
        // a line (every useful SWAP reduces distance by exactly 1).
        assert_eq!(r.num_swaps, 3);
    }

    #[test]
    fn single_qubit_gates_ride_along() {
        let g = devices::linear(3);
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(2));
        c.h(Qubit(0));
        let r = route_identity(&c, g.graph(), &SabreConfig::fast());
        assert_compliant(&r.physical, g.graph());
        assert_eq!(r.physical.num_one_qubit_gates(), 2);
        // The trailing H must act wherever logical q0 ended up.
        let last = r.physical.gates().last().unwrap();
        assert_eq!(last.qubits().0, r.final_layout.phys_of(Qubit(0)));
    }

    #[test]
    fn gate_counts_obey_conservation() {
        let g = devices::ibm_q20_tokyo();
        let c = sabre_circuit_test_fixture(12, 80);
        let r = route_identity(&c, g.graph(), &SabreConfig::fast());
        assert_compliant(&r.physical, g.graph());
        assert_eq!(
            r.physical.num_gates(),
            c.num_gates() + r.num_swaps,
            "output = input gates + swaps"
        );
        assert_eq!(r.total_gates(), c.num_gates() + 3 * r.num_swaps);
    }

    /// Deterministic mixed circuit without pulling in benchgen (dev-dep
    /// cycles): a braided CX pattern over `n` wires.
    fn sabre_circuit_test_fixture(n: u32, rounds: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for r in 0..rounds {
            let a = (r as u32 * 5 + 3) % n;
            let b = (r as u32 * 7 + 1) % n;
            if a != b {
                c.cx(Qubit(a), Qubit(b));
            }
            c.h(Qubit((r as u32) % n));
        }
        c
    }

    #[test]
    fn final_layout_tracks_swaps() {
        let g = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(Qubit(0), Qubit(4));
        let r = route_identity(&c, g.graph(), &SabreConfig::fast());
        // Replay the emitted SWAPs over the initial layout: must equal the
        // reported final layout.
        let mut replay = r.initial_layout.clone();
        for gate in r.physical.gates() {
            if gate.is_swap() {
                let (a, b) = gate.qubits();
                replay.swap_physical(a, b.unwrap());
            }
        }
        assert_eq!(replay, r.final_layout);
    }

    #[test]
    fn respects_nontrivial_initial_layout() {
        let g = devices::linear(3);
        let dist = WeightedDistanceMatrix::hops(g.graph());
        // q0 on Q2, q1 on Q1: CX(q0,q1) is executable immediately.
        let layout = Layout::from_logical_to_physical(vec![Qubit(2), Qubit(1), Qubit(0)]).unwrap();
        let mut c = Circuit::new(3);
        c.cx(Qubit(0), Qubit(1));
        let mut rng = StdRng::seed_from_u64(0);
        let r = route_pass(&c, g.graph(), &dist, layout, &SabreConfig::fast(), &mut rng);
        assert_eq!(r.num_swaps, 0);
        assert_eq!(r.physical.gates()[0].qubits(), (Qubit(2), Some(Qubit(1))));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = devices::ibm_q20_tokyo();
        let c = sabre_circuit_test_fixture(10, 60);
        let a = route_identity(&c, g.graph(), &SabreConfig::fast());
        let b = route_identity(&c, g.graph(), &SabreConfig::fast());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_circuit_routes_to_empty() {
        let g = devices::linear(3);
        let c = Circuit::new(3);
        let r = route_identity(&c, g.graph(), &SabreConfig::fast());
        assert!(r.physical.is_empty());
        assert_eq!(r.num_swaps, 0);
    }

    #[test]
    fn works_on_star_topology() {
        // Star stresses decay: all routes go through the hub.
        let g = devices::star(6);
        let mut c = Circuit::new(6);
        for i in 1..5 {
            c.cx(Qubit(i), Qubit(i + 1)); // leaf-to-leaf gates need the hub
        }
        let r = route_identity(&c, g.graph(), &SabreConfig::fast());
        assert_compliant(&r.physical, g.graph());
        assert_eq!(r.forced_routings, 0);
    }

    #[test]
    fn basic_heuristic_also_terminates() {
        let g = devices::ibm_q20_tokyo();
        let c = sabre_circuit_test_fixture(15, 120);
        let r = route_identity(&c, g.graph(), &SabreConfig::basic());
        assert_compliant(&r.physical, g.graph());
    }

    #[test]
    fn no_forced_routings_on_normal_workloads() {
        let g = devices::ibm_q20_tokyo();
        for rounds in [20, 60, 150] {
            let c = sabre_circuit_test_fixture(16, rounds);
            let r = route_identity(&c, g.graph(), &SabreConfig::fast());
            assert_eq!(r.forced_routings, 0, "rounds={rounds}");
        }
    }

    #[test]
    fn swap_candidates_touch_front_qubits_only() {
        let g = devices::ibm_q20_tokyo();
        let mut c = Circuit::new(20);
        c.cx(Qubit(0), Qubit(19));
        let layout = Layout::identity(20);
        let mut scratch = CandidateScratch::new(g.graph());
        let cands = scratch.collect(&c, g.graph(), &layout, &[0]).to_vec();
        for (a, b) in &cands {
            assert!(
                *a == Qubit(0) || *b == Qubit(0) || *a == Qubit(19) || *b == Qubit(19),
                "candidate ({a},{b}) touches neither front qubit"
            );
        }
        // Q0 has degree 2, Q19 has degree 3 on Tokyo; 5 candidate edges.
        assert_eq!(
            cands.len(),
            g.graph().degree(Qubit(0)) + g.graph().degree(Qubit(19))
        );
    }

    #[test]
    fn candidate_scratch_dedupes_and_resets_between_steps() {
        // Two front gates sharing physical neighborhoods: the shared edges
        // must appear exactly once, and a second collect with a different
        // front must not leak state from the first.
        let g = devices::star(5); // hub Q0, leaves Q1..Q4
        let mut c = Circuit::new(5);
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(3), Qubit(4));
        let layout = Layout::identity(5);
        let mut scratch = CandidateScratch::new(g.graph());

        let both = scratch.collect(&c, g.graph(), &layout, &[0, 1]).to_vec();
        // Every leaf couples only to the hub: 4 distinct edges, no dupes.
        assert_eq!(both.len(), 4);
        let mut dedup = both.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), both.len(), "candidates contain duplicates");

        let second = scratch.collect(&c, g.graph(), &layout, &[0]).to_vec();
        assert_eq!(second.len(), 2, "stale seen-bits leaked into next step");
        for edge in &second {
            assert!(both.contains(edge));
        }
    }

    #[test]
    fn decay_state_resets_after_forced_route() {
        let config = SabreConfig::default();
        let mut decay = DecayState::new(4, &config);
        decay.on_swap_selected(Qubit(0), Qubit(1));
        decay.on_swap_selected(Qubit(1), Qubit(2));
        assert!(decay.values()[1] > 1.0 + config.decay_delta);
        decay.on_forced_route();
        assert!(decay.values().iter().all(|&v| v == 1.0));
        assert_eq!(decay.swaps_since_reset, 0);
    }

    #[test]
    fn decay_state_resets_on_interval_and_gate_execution() {
        let config = SabreConfig {
            decay_reset_interval: 3,
            ..SabreConfig::default()
        };
        let mut decay = DecayState::new(3, &config);
        decay.on_swap_selected(Qubit(0), Qubit(1));
        decay.on_swap_selected(Qubit(0), Qubit(1));
        assert!(decay.values()[0] > 1.0);
        decay.on_swap_selected(Qubit(0), Qubit(1)); // third: interval reset
        assert!(decay.values().iter().all(|&v| v == 1.0));

        decay.on_swap_selected(Qubit(1), Qubit(2));
        decay.on_gate_executed();
        assert!(decay.values().iter().all(|&v| v == 1.0));
    }

    /// Drives the livelock guard deterministically: an all-zero cost
    /// matrix makes every SWAP score identically, so the search becomes a
    /// seeded random walk that cannot close a long line before the guard
    /// fires.
    fn forced_routing_pass() -> RoutedCircuit {
        let g = devices::linear(24);
        let mut c = Circuit::new(24);
        c.cx(Qubit(0), Qubit(23));
        let blind = WeightedDistanceMatrix::floyd_warshall(g.graph(), |_, _| 0.0);
        let config = SabreConfig {
            livelock_slack: 0,
            ..SabreConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        route_pass(
            &c,
            g.graph(),
            &blind,
            Layout::identity(24),
            &config,
            &mut rng,
        )
    }

    #[test]
    fn forced_routing_counts_swaps_in_search_steps() {
        let r = forced_routing_pass();
        assert!(
            r.forced_routings > 0,
            "zero-cost matrix on a long line must trip the livelock guard"
        );
        // Every inserted SWAP — scored or forced — is one search step;
        // before the fix, forced SWAPs were invisible to the telemetry.
        assert_eq!(r.search_steps, r.num_swaps);
        // The forced routing must still produce a valid circuit.
        assert_compliant(&r.physical, devices::linear(24).graph());
        assert_eq!(r.physical.num_gates(), 1 + r.num_swaps);
    }
}
