use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use sabre_circuit::Qubit;

/// The mapping `π` between logical and physical qubits (paper Table I).
///
/// A `Layout` is a bijection over `0..N` where `N` is the device size.
/// Circuits with fewer than `N` logical qubits are padded with *virtual*
/// logical qubits (`n..N`) that occupy the remaining physical qubits; they
/// never appear in gates but keep the mapping a bijection, which is what
/// lets SWAPs be tracked uniformly.
///
/// Both directions are stored (`π` and `π⁻¹`), so lookups are `O(1)` and a
/// SWAP update is four writes — this is the data structure behind the
/// per-step `O(N)` complexity claimed in §IV-C1.
///
/// # Example
///
/// ```
/// use sabre::Layout;
/// use sabre_circuit::Qubit;
///
/// let mut layout = Layout::identity(4);
/// layout.swap_physical(Qubit(0), Qubit(3));
/// assert_eq!(layout.phys_of(Qubit(0)), Qubit(3));
/// assert_eq!(layout.logical_on(Qubit(3)), Qubit(0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// `log_to_phys[q] = Q` — logical `q` currently sits on physical `Q`.
    log_to_phys: Vec<Qubit>,
    /// `phys_to_log[Q] = q` — the inverse direction.
    phys_to_log: Vec<Qubit>,
}

impl Layout {
    /// The identity mapping on `n` qubits (`q_i ↦ Q_i`).
    pub fn identity(n: u32) -> Self {
        let ids: Vec<Qubit> = (0..n).map(Qubit).collect();
        Layout {
            log_to_phys: ids.clone(),
            phys_to_log: ids,
        }
    }

    /// A uniformly random bijection on `n` qubits — the paper's "randomly
    /// generate an initial mapping as a start point" (§IV-A).
    pub fn random(n: u32, rng: &mut StdRng) -> Self {
        let mut perm: Vec<Qubit> = (0..n).map(Qubit).collect();
        // Fisher–Yates.
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        Layout::from_logical_to_physical(perm).expect("shuffled identity is a bijection")
    }

    /// Builds a layout from the `logical → physical` direction.
    ///
    /// Returns `None` if `mapping` is not a bijection over `0..len`.
    pub fn from_logical_to_physical(mapping: Vec<Qubit>) -> Option<Self> {
        let n = mapping.len();
        let mut inverse = vec![Qubit(u32::MAX); n];
        for (logical, &phys) in mapping.iter().enumerate() {
            if phys.index() >= n || inverse[phys.index()] != Qubit(u32::MAX) {
                return None;
            }
            inverse[phys.index()] = Qubit(logical as u32);
        }
        Some(Layout {
            log_to_phys: mapping,
            phys_to_log: inverse,
        })
    }

    /// Number of qubits covered (the device size `N`).
    pub fn len(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Whether the layout is empty (zero-qubit device).
    pub fn is_empty(&self) -> bool {
        self.log_to_phys.is_empty()
    }

    /// `π(q)`: the physical qubit currently holding logical `q`.
    #[inline]
    pub fn phys_of(&self, logical: Qubit) -> Qubit {
        self.log_to_phys[logical.index()]
    }

    /// `π⁻¹(Q)`: the logical qubit currently on physical `Q`.
    #[inline]
    pub fn logical_on(&self, phys: Qubit) -> Qubit {
        self.phys_to_log[phys.index()]
    }

    /// The full `logical → physical` table.
    pub fn logical_to_physical(&self) -> &[Qubit] {
        &self.log_to_phys
    }

    /// The full `physical → logical` table.
    pub fn physical_to_logical(&self) -> &[Qubit] {
        &self.phys_to_log
    }

    /// Applies a SWAP on two **physical** qubits: the logical qubits living
    /// there exchange places. This is the layout update of Algorithm 1's
    /// `π = π.update(SWAP)`.
    #[inline]
    pub fn swap_physical(&mut self, a: Qubit, b: Qubit) {
        debug_assert_ne!(a, b, "swap endpoints must differ");
        let la = self.phys_to_log[a.index()];
        let lb = self.phys_to_log[b.index()];
        self.phys_to_log.swap(a.index(), b.index());
        self.log_to_phys.swap(la.index(), lb.index());
    }

    /// Checks internal consistency (`π⁻¹ ∘ π = id`); tests and debug
    /// assertions use this.
    pub fn is_consistent(&self) -> bool {
        self.log_to_phys.len() == self.phys_to_log.len()
            && self.log_to_phys.iter().enumerate().all(|(q, &p)| {
                p.index() < self.phys_to_log.len() && self.phys_to_log[p.index()] == Qubit(q as u32)
            })
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (q, p) in self.log_to_phys.iter().enumerate() {
            if q > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q{q}↦Q{}", p.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_maps_each_to_itself() {
        let l = Layout::identity(5);
        for q in 0..5u32 {
            assert_eq!(l.phys_of(Qubit(q)), Qubit(q));
            assert_eq!(l.logical_on(Qubit(q)), Qubit(q));
        }
        assert!(l.is_consistent());
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn swap_physical_updates_both_directions() {
        let mut l = Layout::identity(4);
        l.swap_physical(Qubit(1), Qubit(2));
        assert_eq!(l.phys_of(Qubit(1)), Qubit(2));
        assert_eq!(l.phys_of(Qubit(2)), Qubit(1));
        assert_eq!(l.logical_on(Qubit(1)), Qubit(2));
        assert_eq!(l.logical_on(Qubit(2)), Qubit(1));
        assert!(l.is_consistent());
    }

    #[test]
    fn swap_is_involutive() {
        let mut l = Layout::identity(6);
        l.swap_physical(Qubit(0), Qubit(5));
        l.swap_physical(Qubit(0), Qubit(5));
        assert_eq!(l, Layout::identity(6));
    }

    #[test]
    fn swap_sequence_tracks_figure3_example() {
        // Paper §III-A: after SWAP on q1,q2 the mapping becomes
        // {q1↦Q2, q2↦Q1, q3↦Q3, q4↦Q4} (0-indexed here).
        let mut l = Layout::identity(4);
        // SWAP acts on the physical qubits where q0,q1 live: Q0,Q1.
        l.swap_physical(l.phys_of(Qubit(0)), l.phys_of(Qubit(1)));
        assert_eq!(l.phys_of(Qubit(0)), Qubit(1));
        assert_eq!(l.phys_of(Qubit(1)), Qubit(0));
        assert_eq!(l.phys_of(Qubit(2)), Qubit(2));
        assert_eq!(l.phys_of(Qubit(3)), Qubit(3));
    }

    #[test]
    fn random_layout_is_bijection() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let l = Layout::random(10, &mut rng);
            assert!(l.is_consistent());
        }
    }

    #[test]
    fn random_layouts_differ_across_draws() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Layout::random(10, &mut rng);
        let b = Layout::random(10, &mut rng);
        assert_ne!(a, b, "astronomically unlikely to collide");
    }

    #[test]
    fn from_logical_rejects_non_bijection() {
        assert!(Layout::from_logical_to_physical(vec![Qubit(0), Qubit(0)]).is_none());
        assert!(Layout::from_logical_to_physical(vec![Qubit(0), Qubit(5)]).is_none());
        assert!(Layout::from_logical_to_physical(vec![Qubit(1), Qubit(0)]).is_some());
    }

    #[test]
    fn display_shows_mapping() {
        let l = Layout::identity(2);
        assert_eq!(l.to_string(), "{q0↦Q0, q1↦Q1}");
    }

    #[test]
    fn empty_layout() {
        let l = Layout::identity(0);
        assert!(l.is_empty());
        assert!(l.is_consistent());
    }
}
