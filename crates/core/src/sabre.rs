use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sabre_circuit::interaction::InteractionGraph;
use sabre_circuit::Circuit;
use sabre_topology::embedding::{self, Embedding};
use sabre_topology::noise::NoiseModel;
use sabre_topology::{
    CouplingGraph, DistanceBackend, DistanceMatrix, Qubit, WeightedDistanceMatrix,
};

use sabre_circuit::DependencyDag;

use crate::cache::EmbeddingVerdictCache;
use crate::profile::{ProfileCollector, RouteProfile};
use crate::router::{route_pass, route_pass_prepared, PassContext};
use crate::search::SearchState;
use crate::{Layout, RouteError, RoutedCircuit, SabreConfig, SabreResult, TraversalReport};

/// Per-circuit state shared by every restart: the reversed circuit and
/// both traversal DAGs, built **once** per `route` call instead of once
/// per traversal. Immutable, so the rayon-parallel engine shares one copy
/// across workers.
pub(crate) struct PreparedCircuit<'a> {
    circuit: &'a Circuit,
    reversed: &'a Circuit,
    dag_forward: DependencyDag,
    dag_reverse: DependencyDag,
}

impl<'a> PreparedCircuit<'a> {
    pub(crate) fn new(circuit: &'a Circuit, reversed: &'a Circuit) -> Self {
        PreparedCircuit {
            circuit,
            reversed,
            dag_forward: DependencyDag::new(circuit),
            dag_reverse: DependencyDag::new(reversed),
        }
    }
}

/// Everything one restart (random initial mapping + `num_traversals`
/// bidirectional passes) produced. Restarts are fully independent — the
/// unit of work both the sequential and the rayon-parallel pipelines
/// distribute.
#[derive(Clone, Debug)]
pub(crate) struct RestartOutcome {
    /// Best forward pass of this restart.
    pub(crate) candidate: RoutedCircuit,
    /// Telemetry for every traversal, in execution order.
    pub(crate) reports: Vec<TraversalReport>,
    /// SWAPs of this restart's very first (look-ahead) traversal.
    pub(crate) first_traversal_swaps: usize,
    /// Hot-loop phase profile of this restart's traversals, when
    /// [`SabreConfig::profile`] is set. Riding in the outcome keeps the
    /// rayon-parallel engine's restart-order reduction (and with it the
    /// bit-identity contract) intact.
    pub(crate) profile: Option<RouteProfile>,
}

/// The complete SABRE pipeline: preprocessing, multi-restart
/// bidirectional traversal, and best-result selection (paper §IV).
///
/// Construction performs the preprocessing of §IV-A once (connectivity
/// check and distance preprocessing — a dense all-pairs matrix up to
/// [`sabre_topology::DENSE_DISTANCE_THRESHOLD`] qubits, the sparse
/// on-demand row engine above it); the router can then route any number
/// of circuits against the same device.
///
/// # Example
///
/// ```
/// use sabre::{SabreConfig, SabreRouter};
/// use sabre_circuit::{Circuit, Qubit};
/// use sabre_topology::devices;
///
/// let device = devices::ibm_q20_tokyo();
/// let router = SabreRouter::new(device.graph().clone(), SabreConfig::default())?;
///
/// let mut circuit = Circuit::new(4);
/// circuit.cx(Qubit(0), Qubit(1));
/// circuit.cx(Qubit(1), Qubit(2));
/// circuit.cx(Qubit(2), Qubit(3));
///
/// let result = router.route(&circuit)?;
/// assert_eq!(result.added_gates() % 3, 0); // additions come in 3-CNOT SWAPs
/// # Ok::<(), sabre::RouteError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SabreRouter {
    // Preprocessing is behind `Arc` so routers acquired from a warm
    // `DeviceCache` (and `Clone`d routers generally) share one distance
    // matrix instead of copying `O(N²)` floats.
    graph: Arc<CouplingGraph>,
    dist: Arc<DistanceMatrix>,
    cost: Arc<WeightedDistanceMatrix>,
    config: SabreConfig,
    /// Shared embedding-verdict store for the perfect-placement probe;
    /// `None` (the default) probes from scratch on every `route` call.
    verdicts: Option<Arc<EmbeddingVerdictCache>>,
}

impl SabreRouter {
    /// Builds a router for `graph` with the given configuration.
    ///
    /// # Errors
    ///
    /// - [`RouteError::InvalidConfig`] if the configuration fails
    ///   [`SabreConfig::validate`].
    /// - [`RouteError::DisconnectedDevice`] if some physical qubit pairs
    ///   can never interact.
    pub fn new(graph: CouplingGraph, config: SabreConfig) -> Result<Self, RouteError> {
        Self::with_distance_backend(graph, config, DistanceBackend::Auto)
    }

    /// Like [`SabreRouter::new`] but with an explicit distance-engine
    /// choice instead of the size-based auto policy. `DistanceBackend::
    /// Dense` forces the `O(N²)` all-pairs matrices regardless of device
    /// size; `DistanceBackend::Sparse` forces the on-demand row engine
    /// even on small devices. Routing output is bit-identical either way
    /// (the equivalence suite pins this); the choice only trades memory
    /// against per-row latency.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SabreRouter::new`].
    pub fn with_distance_backend(
        graph: CouplingGraph,
        config: SabreConfig,
        backend: DistanceBackend,
    ) -> Result<Self, RouteError> {
        config
            .validate()
            .map_err(|reason| RouteError::InvalidConfig { reason })?;
        if !graph.is_connected() {
            return Err(RouteError::DisconnectedDevice);
        }
        let dist = Arc::new(DistanceMatrix::with_backend(&graph, backend));
        let cost = Arc::new(WeightedDistanceMatrix::with_backend(
            &graph,
            |_, _| 1.0,
            backend,
        ));
        Ok(SabreRouter {
            graph: Arc::new(graph),
            dist,
            cost,
            config,
            verdicts: None,
        })
    }

    /// Assembles a router from preprocessed parts — the warm path of
    /// [`crate::DeviceCache`]: no connectivity check, no Floyd–Warshall,
    /// just `Arc` clones. The caller guarantees the parts belong together
    /// and that `config` already validated.
    pub(crate) fn from_parts(
        graph: Arc<CouplingGraph>,
        dist: Arc<DistanceMatrix>,
        cost: Arc<WeightedDistanceMatrix>,
        config: SabreConfig,
        verdicts: Option<Arc<EmbeddingVerdictCache>>,
    ) -> Self {
        SabreRouter {
            graph,
            dist,
            cost,
            config,
            verdicts,
        }
    }

    /// Builds a **noise-aware** router (the §VI "More Precise Hardware
    /// Modeling" extension): the heuristic distance between two physical
    /// qubits becomes the cheapest log-domain SWAP-fidelity path under
    /// `noise`, so the search prefers routes through reliable couplers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SabreRouter::new`].
    pub fn with_noise(
        graph: CouplingGraph,
        config: SabreConfig,
        noise: &NoiseModel,
    ) -> Result<Self, RouteError> {
        Self::with_noise_and_backend(graph, config, noise, DistanceBackend::Auto)
    }

    /// [`SabreRouter::with_noise`] with an explicit distance-engine
    /// choice — the noise-weighted analogue of
    /// [`SabreRouter::with_distance_backend`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SabreRouter::new`].
    pub fn with_noise_and_backend(
        graph: CouplingGraph,
        config: SabreConfig,
        noise: &NoiseModel,
        backend: DistanceBackend,
    ) -> Result<Self, RouteError> {
        let mut router = SabreRouter::with_distance_backend(graph, config, backend)?;
        router.cost = Arc::new(noise_cost_matrix_with_backend(
            &router.graph,
            noise,
            backend,
        ));
        Ok(router)
    }

    /// Attaches a shared embedding-verdict store (builder-style): repeated
    /// `route` calls — by this router or any router of the **same device**
    /// sharing the store — reuse perfect-placement probe verdicts instead
    /// of re-running the backtracking search. Results are bit-identical to
    /// an uncached router; only the probe's work is skipped. See
    /// [`EmbeddingVerdictCache`] for the keying that makes cross-device
    /// sharing safe.
    ///
    /// Routers acquired through [`crate::DeviceCache`] come with the
    /// cache's store already attached.
    #[must_use]
    pub fn with_embedding_cache(mut self, verdicts: Arc<EmbeddingVerdictCache>) -> Self {
        self.verdicts = Some(verdicts);
        self
    }

    /// Detaches any embedding-verdict store: every subsequent `route`
    /// pays the cold probe again. Timing studies use this so repeat
    /// measurements of one circuit stay comparable (a warm verdict would
    /// silently remove the probe from the measured section).
    #[must_use]
    pub fn without_embedding_cache(mut self) -> Self {
        self.verdicts = None;
        self
    }

    /// The attached embedding-verdict store, if any.
    pub fn embedding_cache(&self) -> Option<&Arc<EmbeddingVerdictCache>> {
        self.verdicts.as_ref()
    }

    /// Decomposes the router into its shared preprocessing — the single
    /// source of truth the [`crate::DeviceCache`] stores, so the cache's
    /// cold path can never drift from [`SabreRouter::new`].
    pub(crate) fn into_parts(
        self,
    ) -> (
        Arc<CouplingGraph>,
        Arc<DistanceMatrix>,
        Arc<WeightedDistanceMatrix>,
    ) {
        (self.graph, self.dist, self.cost)
    }

    /// The device coupling graph.
    pub fn graph(&self) -> &CouplingGraph {
        &self.graph
    }

    /// The precomputed distance matrix `D`.
    pub fn distance_matrix(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// The active configuration.
    pub fn config(&self) -> &SabreConfig {
        &self.config
    }

    /// Routes `circuit` with the full SABRE pipeline: for each of
    /// `num_restarts` random initial mappings, run `num_traversals`
    /// alternating forward/backward passes (final mappings seeding the next
    /// pass — the reverse traversal of §IV-C2) and keep the best final
    /// forward pass across restarts.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::DeviceTooSmall`] if the circuit has more
    /// logical qubits than the device has physical qubits.
    pub fn route(&self, circuit: &Circuit) -> Result<SabreResult, RouteError> {
        self.check_fits(circuit)?;
        let start = Instant::now();
        let reversed = circuit.reversed();
        let prepared = PreparedCircuit::new(circuit, &reversed);
        let outcomes: Vec<RestartOutcome> = (0..self.config.num_restarts)
            .map(|restart| self.run_restart(&prepared, restart))
            .collect();
        Ok(self.assemble(circuit, outcomes, start))
    }

    /// Errors with [`RouteError::DeviceTooSmall`] if `circuit` has more
    /// logical qubits than the device has physical ones.
    pub(crate) fn check_fits(&self, circuit: &Circuit) -> Result<(), RouteError> {
        let n_phys = self.graph.num_qubits();
        if circuit.num_qubits() > n_phys {
            return Err(RouteError::DeviceTooSmall {
                required: circuit.num_qubits(),
                available: n_phys,
            });
        }
        Ok(())
    }

    /// One independent restart: seed a per-restart RNG, draw a random
    /// initial mapping, and run `num_traversals` alternating passes.
    ///
    /// The RNG stream depends only on `(config.seed, restart)`, never on
    /// which thread runs the restart — this is what makes the parallel
    /// engine ([`crate::parallel`]) bit-identical to the sequential loop.
    ///
    /// The traversal DAGs come pre-built in `prepared`; the search scratch
    /// ([`SearchState`]) is created once here and persists across the
    /// restart's traversals, so only the first pass pays any allocation.
    pub(crate) fn run_restart(
        &self,
        prepared: &PreparedCircuit<'_>,
        restart: usize,
    ) -> RestartOutcome {
        let n_phys = self.graph.num_qubits();
        // Distinct, deterministic stream per restart.
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add((restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut layout = Layout::random(n_phys, &mut rng);
        let mut last_pass: Option<RoutedCircuit> = None;
        let mut reports = Vec::with_capacity(self.config.num_traversals);
        let mut first_traversal_swaps = 0;
        let mut state = SearchState::new(&self.graph);
        let mut collector = ProfileCollector::new(self.config.profile);

        for traversal in 0..self.config.num_traversals {
            let is_reverse = traversal % 2 == 1;
            let ctx = PassContext {
                circuit: if is_reverse {
                    prepared.reversed
                } else {
                    prepared.circuit
                },
                graph: &self.graph,
                dist: &self.cost,
                dag: if is_reverse {
                    &prepared.dag_reverse
                } else {
                    &prepared.dag_forward
                },
                config: &self.config,
            };
            let pass = route_pass_prepared(&ctx, layout, &mut rng, &mut state, &mut collector);
            layout = pass.final_layout.clone();
            reports.push(TraversalReport {
                restart,
                traversal,
                reversed: is_reverse,
                num_swaps: pass.num_swaps,
            });
            if traversal == 0 {
                first_traversal_swaps = pass.num_swaps;
            }
            // Every *forward* pass yields a valid routing of the
            // original circuit; keep whichever is best. (The reverse
            // traversal usually improves the final pass, but on very
            // long circuits an earlier pass can occasionally win — a
            // production router should never return the worse one.)
            if !is_reverse && is_better(&pass, last_pass.as_ref()) {
                last_pass = Some(pass);
            }
        }

        RestartOutcome {
            candidate: last_pass.expect("traversal count is odd"),
            reports,
            first_traversal_swaps,
            profile: collector.take(),
        }
    }

    /// Folds restart outcomes (in restart order, so ties resolve exactly
    /// like the sequential loop), then gives the embedding probe a chance
    /// to beat them, and stamps the wall clock.
    pub(crate) fn assemble(
        &self,
        circuit: &Circuit,
        outcomes: Vec<RestartOutcome>,
        start: Instant,
    ) -> SabreResult {
        let mut best: Option<RoutedCircuit> = None;
        let mut best_restart = 0usize;
        let mut traversals =
            Vec::with_capacity(self.config.num_restarts * self.config.num_traversals);
        let mut first_traversal_swaps_best: Option<usize> = None;
        let mut profile: Option<RouteProfile> = None;

        for (restart, outcome) in outcomes.into_iter().enumerate() {
            traversals.extend(outcome.reports);
            first_traversal_swaps_best = Some(match first_traversal_swaps_best {
                Some(prev) => prev.min(outcome.first_traversal_swaps),
                None => outcome.first_traversal_swaps,
            });
            // Restart-order merge: the aggregated profile is identical
            // whether restarts ran sequentially or on the rayon pool.
            if let Some(partial) = outcome.profile {
                match &mut profile {
                    Some(total) => total.merge(&partial),
                    None => profile = Some(partial),
                }
            }
            if is_better(&outcome.candidate, best.as_ref()) {
                best = Some(outcome.candidate);
                best_restart = restart;
            }
        }

        let mut best = best.expect("at least one restart configured");
        let mut perfect_placement = false;
        // The probe runs *after* the restart search, not before: the
        // first-traversal telemetry (the paper's g_la column in table2/
        // smallopt) must reflect a real search even when an embedding
        // exists, so embeddable circuits cannot short-circuit the
        // restarts. Callers that only want `best` can skip the probe cost
        // via `embedding_probe_budget: 0`; routers with an attached
        // [`EmbeddingVerdictCache`] skip only the *backtracking* on repeat
        // interaction graphs — the probe-after-search ordering (and with
        // it this telemetry contract) is unchanged.
        //
        // A restart that already hit zero SWAPs cannot be improved: a
        // zero-SWAP routing is a wire relabeling, so its depth equals the
        // input's and the probe could at best tie.
        if best.num_swaps > 0 {
            if let Some(candidate) = self.perfect_candidate(circuit) {
                if is_better(&candidate, Some(&best)) {
                    best = candidate;
                    perfect_placement = true;
                }
            }
        }

        SabreResult {
            best,
            best_restart,
            perfect_placement,
            traversals,
            first_traversal_added_gates: 3 * first_traversal_swaps_best.unwrap_or(0),
            elapsed: start.elapsed(),
            profile,
        }
    }

    /// The perfect-placement probe (paper §V-A1: small benchmarks often
    /// admit a coupling subgraph "that can perfectly … match logical qubit
    /// coupling; our algorithm can find such matching"). Spends at most
    /// `config.embedding_probe_budget` backtracking steps looking for a
    /// zero-SWAP embedding of the circuit's interaction graph; on success,
    /// routes once from that placement (guaranteed SWAP-free).
    fn perfect_candidate(&self, circuit: &Circuit) -> Option<RoutedCircuit> {
        let budget = self.config.embedding_probe_budget;
        if budget == 0 {
            return None;
        }
        let pattern = InteractionGraph::of(circuit);
        let verdict = match &self.verdicts {
            Some(cache) => cache.find_embedding(&pattern, &self.graph, budget),
            None => embedding::find_embedding_within(&pattern, &self.graph, budget),
        };
        match verdict? {
            Embedding::Found(map) => {
                let layout = self.complete_layout(&map);
                let mut rng = StdRng::seed_from_u64(self.config.seed);
                let pass = route_pass(
                    circuit,
                    &self.graph,
                    &self.cost,
                    layout,
                    &self.config,
                    &mut rng,
                );
                debug_assert_eq!(pass.num_swaps, 0, "embedding was not zero-SWAP");
                Some(pass)
            }
            Embedding::Impossible => None,
        }
    }

    /// Extends a partial embedding (interacting logicals only) to a full
    /// device-sized bijection: unassigned logical qubits take the free
    /// physical qubits in ascending order (deterministic).
    fn complete_layout(&self, map: &[Option<Qubit>]) -> Layout {
        let n_phys = self.graph.num_qubits() as usize;
        let mut used = vec![false; n_phys];
        for phys in map.iter().flatten() {
            used[phys.index()] = true;
        }
        let mut free = (0..n_phys as u32).map(Qubit).filter(|q| !used[q.index()]);
        let logical_to_physical: Vec<Qubit> = (0..n_phys)
            .map(|logical| match map.get(logical).copied().flatten() {
                Some(phys) => phys,
                None => free.next().expect("bijection leaves enough free qubits"),
            })
            .collect();
        Layout::from_logical_to_physical(logical_to_physical)
            .expect("embedding produces an injective placement")
    }

    /// Computes a high-quality **initial layout only** — the placement
    /// side of SABRE, analogous to Qiskit's `SabreLayout` pass. Runs the
    /// same multi-restart bidirectional traversals as [`SabreRouter::route`]
    /// but returns just the initial mapping of the best restart, for users
    /// who feed placements into their own routing or scheduling stack.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::DeviceTooSmall`] if the circuit does not fit.
    pub fn compute_initial_layout(&self, circuit: &Circuit) -> Result<Layout, RouteError> {
        let result = self.route(circuit)?;
        Ok(result.best.initial_layout)
    }

    /// Routes with a caller-supplied initial mapping and a single forward
    /// pass — no restarts, no reverse traversal. Useful when a placement
    /// is already known (e.g. from [`sabre_topology::embedding`]) and for
    /// ablation studies.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::DeviceTooSmall`] if the circuit does not fit,
    /// or [`RouteError::InvalidConfig`] if `initial_layout` does not cover
    /// the device.
    pub fn route_with_layout(
        &self,
        circuit: &Circuit,
        initial_layout: Layout,
    ) -> Result<RoutedCircuit, RouteError> {
        let n_phys = self.graph.num_qubits();
        if circuit.num_qubits() > n_phys {
            return Err(RouteError::DeviceTooSmall {
                required: circuit.num_qubits(),
                available: n_phys,
            });
        }
        if initial_layout.len() != n_phys as usize {
            return Err(RouteError::InvalidConfig {
                reason: format!(
                    "initial layout covers {} qubits, device has {}",
                    initial_layout.len(),
                    n_phys
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        Ok(route_pass(
            circuit,
            &self.graph,
            &self.cost,
            initial_layout,
            &self.config,
            &mut rng,
        ))
    }
}

/// Floor for per-edge SWAP costs in the noise-weighted distance matrix.
///
/// A zero-error coupling is legal (`NoiseModel::uniform(g, 0.0, 0.0)`, or
/// `with_edge_error(…, 0.0)` after a calibration snapshot) and makes
/// `swap_cost = -3·ln(1-0) = 0`. Without a floor the normalization divisor
/// collapses to `f64::MIN_POSITIVE` and every other edge's normalized cost
/// overflows to infinity, which the weighted Floyd–Warshall rejects.
/// Clamping each edge to this floor *before* normalizing keeps every cost
/// finite while preserving the ordering between real couplers: `1e-9` is
/// far below any physical error's cost (ε = 1e-6 already costs 3e-6).
pub(crate) const MIN_EDGE_SWAP_COST: f64 = 1e-9;

/// The noise-weighted cost matrix shared by [`SabreRouter::with_noise`]
/// and the [`crate::DeviceCache`] refresh path: per-edge SWAP costs
/// (floored, see [`MIN_EDGE_SWAP_COST`]) normalized by the cheapest edge
/// so costs stay comparable to hop counts (best coupler ≈ 1 hop), then
/// closed under all-pairs shortest paths (dense below the size
/// threshold, the sparse on-demand engine above it).
pub(crate) fn noise_cost_matrix(
    graph: &CouplingGraph,
    noise: &NoiseModel,
) -> WeightedDistanceMatrix {
    noise_cost_matrix_with_backend(graph, noise, DistanceBackend::Auto)
}

/// [`noise_cost_matrix`] with an explicit backend choice (the
/// equivalence tests force both and compare routing bit-for-bit).
pub(crate) fn noise_cost_matrix_with_backend(
    graph: &CouplingGraph,
    noise: &NoiseModel,
    backend: DistanceBackend,
) -> WeightedDistanceMatrix {
    let edge_cost = |a: Qubit, b: Qubit| noise.swap_cost(a, b).max(MIN_EDGE_SWAP_COST);
    let mut min_cost = graph
        .edges()
        .iter()
        .map(|&(a, b)| edge_cost(a, b))
        .fold(f64::INFINITY, f64::min);
    if !min_cost.is_finite() {
        // Edgeless graph (0 or 1 qubits): the weight closure is never
        // called, but keep the divisor sane anyway.
        min_cost = 1.0;
    }
    WeightedDistanceMatrix::with_backend(graph, |a, b| edge_cost(a, b) / min_cost, backend)
}

/// Best = fewest added gates, ties broken by decomposed depth (the paper's
/// two metrics, in that order).
fn is_better(candidate: &RoutedCircuit, current: Option<&RoutedCircuit>) -> bool {
    match current {
        None => true,
        Some(best) => {
            candidate.num_swaps < best.num_swaps
                || (candidate.num_swaps == best.num_swaps && candidate.depth() < best.depth())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_circuit::Qubit;
    use sabre_topology::devices;

    fn chain_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.cx(Qubit(i), Qubit(i + 1));
        }
        c
    }

    #[test]
    fn rejects_disconnected_device() {
        let g = CouplingGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            SabreRouter::new(g, SabreConfig::default()).unwrap_err(),
            RouteError::DisconnectedDevice
        );
    }

    #[test]
    fn rejects_invalid_config() {
        let g = devices::linear(3);
        let config = SabreConfig {
            num_traversals: 2,
            ..SabreConfig::default()
        };
        assert!(matches!(
            SabreRouter::new(g.graph().clone(), config),
            Err(RouteError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn rejects_oversized_circuit() {
        let g = devices::linear(3);
        let router = SabreRouter::new(g.graph().clone(), SabreConfig::fast()).unwrap();
        let c = chain_circuit(5);
        assert_eq!(
            router.route(&c).unwrap_err(),
            RouteError::DeviceTooSmall {
                required: 5,
                available: 3
            }
        );
    }

    #[test]
    fn full_pipeline_routes_and_reports() {
        let device = devices::ibm_q20_tokyo();
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::default()).unwrap();
        let c = chain_circuit(10);
        let result = router.route(&c).unwrap();
        // 5 restarts × 3 traversals.
        assert_eq!(result.traversals.len(), 15);
        assert!(result.best_restart < 5);
        // A chain embeds into Tokyo; with so few gates (9 CX, each pair
        // once) the heuristic signal is weak, but the pipeline must land
        // within one SWAP of the optimum. (The repeated-interaction Ising
        // benchmarks hit exactly 0 — see tests/ising_optimality.rs.)
        assert!(
            result.added_gates() <= 3,
            "chain should need at most one SWAP, got {}",
            result.added_gates()
        );
        assert_eq!(result.best.forced_routings, 0);
    }

    #[test]
    fn reverse_traversal_never_hurts_the_reported_result() {
        // The final result must be at least as good as the best single
        // forward pass would report (g_op ≤ g_la on every Table II row the
        // paper shows — here we check our implementation preserves that).
        let device = devices::ibm_q20_tokyo();
        let c = {
            let mut c = Circuit::new(12);
            for r in 0..60u32 {
                let a = (r * 5 + 3) % 12;
                let b = (r * 7 + 1) % 12;
                if a != b {
                    c.cx(Qubit(a), Qubit(b));
                }
            }
            c
        };
        let full = SabreRouter::new(device.graph().clone(), SabreConfig::default())
            .unwrap()
            .route(&c)
            .unwrap();
        assert!(
            full.added_gates() <= full.first_traversal_added_gates,
            "g_op={} > g_la={}",
            full.added_gates(),
            full.first_traversal_added_gates
        );
    }

    #[test]
    fn route_with_layout_uses_given_placement() {
        let device = devices::linear(4);
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(3));
        // Place q0 and q3 adjacent up front: no swaps needed.
        let layout =
            Layout::from_logical_to_physical(vec![Qubit(1), Qubit(0), Qubit(3), Qubit(2)]).unwrap();
        let routed = router.route_with_layout(&c, layout).unwrap();
        assert_eq!(routed.num_swaps, 0);
    }

    #[test]
    fn route_with_layout_rejects_wrong_size() {
        let device = devices::linear(4);
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
        let c = chain_circuit(3);
        let small = Layout::identity(3);
        assert!(matches!(
            router.route_with_layout(&c, small),
            Err(RouteError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn deterministic_across_calls() {
        let device = devices::ibm_q20_tokyo();
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::default()).unwrap();
        let c = chain_circuit(8);
        let a = router.route(&c).unwrap();
        let b = router.route(&c).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.traversals, b.traversals);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_compliant() {
        let device = devices::ibm_q20_tokyo();
        let c = {
            let mut c = Circuit::new(10);
            for r in 0..40u32 {
                let a = (r * 3 + 1) % 10;
                let b = (r * 7 + 4) % 10;
                if a != b {
                    c.cx(Qubit(a), Qubit(b));
                }
            }
            c
        };
        for seed in [1u64, 2, 3] {
            let config = SabreConfig {
                seed,
                ..SabreConfig::fast()
            };
            let result = SabreRouter::new(device.graph().clone(), config)
                .unwrap()
                .route(&c)
                .unwrap();
            for gate in result.best.physical.gates() {
                if let (a, Some(b)) = gate.qubits() {
                    assert!(device.graph().are_coupled(a, b));
                }
            }
        }
    }

    #[test]
    fn noise_aware_router_avoids_bad_couplers() {
        // Ring 0-1-2-3-0; CX(q0,q2) can be resolved by swapping through
        // Q1 or Q3. Make every edge touching Q1 terrible: the noise-aware
        // router must route around it, the hop-based one cannot tell.
        let graph = CouplingGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let noise = sabre_topology::noise::NoiseModel::uniform(&graph, 0.001, 0.0001)
            .with_edge_error(Qubit(0), Qubit(1), 0.4)
            .with_edge_error(Qubit(1), Qubit(2), 0.4);
        let config = SabreConfig {
            num_restarts: 1,
            num_traversals: 1,
            ..SabreConfig::default()
        };
        let router = SabreRouter::with_noise(graph.clone(), config, &noise).unwrap();
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(2));
        let routed = router.route_with_layout(&c, Layout::identity(4)).unwrap();
        assert_eq!(routed.num_swaps, 1);
        for gate in routed.physical.gates() {
            if gate.is_swap() {
                let (a, b) = gate.qubits();
                let b = b.unwrap();
                assert!(
                    noise.edge_error(a, b) < 0.1,
                    "noise-aware router crossed a bad coupler ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn zero_error_noise_model_degenerates_to_hop_routing() {
        // Regression: a legal all-zero-error model used to divide every
        // edge cost by `f64::MIN_POSITIVE`. With the per-edge floor, every
        // normalized cost is exactly 1.0 — the hop matrix — so routing
        // must be bit-identical to the noise-free router.
        let device = devices::ibm_q20_tokyo();
        let noise = NoiseModel::uniform(device.graph(), 0.0, 0.0);
        let config = SabreConfig::default();
        let noisy = SabreRouter::with_noise(device.graph().clone(), config, &noise).unwrap();
        let plain = SabreRouter::new(device.graph().clone(), config).unwrap();
        let c = chain_circuit(10);
        let a = noisy.route(&c).unwrap();
        let b = plain.route(&c).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.traversals, b.traversals);
    }

    #[test]
    fn zero_error_edge_does_not_blow_up_other_costs() {
        // Regression: one perfect coupler among lossy ones used to push
        // every other normalized cost to infinity (panicking the weighted
        // Floyd–Warshall). The zero-error edge must simply be the cheapest.
        let graph = CouplingGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let noise =
            NoiseModel::uniform(&graph, 0.05, 0.001).with_edge_error(Qubit(0), Qubit(1), 0.0);
        let router = SabreRouter::with_noise(graph, SabreConfig::fast(), &noise).unwrap();
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(2));
        let result = router.route(&c).unwrap();
        assert!(result.best.num_swaps <= 1);

        let cost = noise_cost_matrix(router.graph(), &noise);
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert!(
                    cost.get(Qubit(i), Qubit(j)).is_finite(),
                    "cost ({i},{j}) must be finite"
                );
            }
        }
        // The perfect coupler dominates: it is strictly the cheapest edge.
        assert!(cost.get(Qubit(0), Qubit(1)) < cost.get(Qubit(1), Qubit(2)));
    }

    #[test]
    fn noise_aware_router_still_verifies() {
        let device = devices::ibm_q20_tokyo();
        let noise = sabre_topology::noise::NoiseModel::calibrated(device.graph(), 0.02, 4.0, 3);
        let router =
            SabreRouter::with_noise(device.graph().clone(), SabreConfig::fast(), &noise).unwrap();
        let c = {
            let mut c = Circuit::new(12);
            for r in 0..80u32 {
                let a = (r * 5 + 3) % 12;
                let b = (r * 7 + 1) % 12;
                if a != b {
                    c.cx(Qubit(a), Qubit(b));
                }
            }
            c
        };
        let result = router.route(&c).unwrap();
        for gate in result.best.physical.gates() {
            if let (a, Some(b)) = gate.qubits() {
                assert!(device.graph().are_coupled(a, b));
            }
        }
    }

    #[test]
    fn computed_initial_layout_reproduces_best_routing() {
        let device = devices::ibm_q20_tokyo();
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
        let circuit = {
            let mut c = Circuit::new(10);
            for i in 0..9 {
                c.cx(Qubit(i), Qubit(i + 1));
                c.cx(Qubit(i), Qubit(i + 1));
            }
            c
        };
        let layout = router.compute_initial_layout(&circuit).unwrap();
        // Routing again from that layout must cost no more than the full
        // pipeline found (it is the same placement).
        let full = router.route(&circuit).unwrap();
        let single = router.route_with_layout(&circuit, layout).unwrap();
        assert!(single.num_swaps <= full.best.num_swaps + 1);
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let device = devices::linear(4);
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
        let result = router.route(&chain_circuit(4)).unwrap();
        assert!(result.elapsed.as_nanos() > 0);
    }

    use sabre_topology::CouplingGraph;
}
