//! Routed-plan cache: route a circuit *structure* once, serve every
//! re-parameterization by stamping new angles into the cached plan.
//!
//! Variational workloads (VQE/QAOA parameter sweeps) submit the same
//! ansatz thousands of times with different rotation angles. SABRE's
//! search never looks at gate parameters — candidate scores depend only
//! on qubit operands and distances, and every RNG draw depends only on
//! candidate-set sizes — so two circuits with the same *structure* (gate
//! kinds, operands, dependency DAG) route to physically identical
//! circuits that differ only in the angles carried by the gates. A
//! [`PlanCache`] exploits that: the first submission pays the full search
//! and stores the routed skeleton plus a gate-index mapping; every later
//! submission with the same structure is answered by [`RoutedPlan::rebind`]
//! — zero search steps, output bit-identical to a fresh route of the same
//! structure under the plan's configuration.
//!
//! # Key and collision discipline
//!
//! Plans are keyed by a single fingerprint folding together
//!
//! - [`Circuit::structural_digest`] (angles excluded; a strided gate
//!   sample, so keying a deep circuit costs `O(1)` in its length),
//! - [`CouplingGraph::fingerprint`] and, when present,
//!   [`NoiseModel::fingerprint`],
//! - the **objective-defining** [`SabreConfig`] fields.
//!
//! The cache follows the same discipline as
//! [`DeviceCache`](crate::DeviceCache): a 64-bit fingerprint match is
//! never trusted on its own — every hit re-verifies the stored structure,
//! graph, noise model, and config field-by-field, and a mismatch degrades
//! to a cache bypass (counted as a miss), never to aliasing.
//!
//! # Which config fields participate, and why
//!
//! A cached plan is a *concrete routing*; the key must include exactly
//! the fields that change what a routing is worth, and must exclude the
//! fields that only change how hard the router searches for one:
//!
//! | field | in key? | rationale |
//! |---|---|---|
//! | `heuristic` | yes | defines the objective being optimized |
//! | `extended_set_size` | yes | changes the look-ahead objective |
//! | `extended_set_weight` | yes | changes the look-ahead objective |
//! | `decay_delta` | yes | changes the gate-count/depth trade-off |
//! | `decay_reset_interval` | yes | changes the decay objective |
//! | `livelock_slack` | yes | changes when forced routing fires |
//! | `seed` | **no** | search-effort knob: any seed's plan is a valid routing of the structure |
//! | `num_restarts` | **no** | ditto — more restarts, same objective |
//! | `num_traversals` | **no** | ditto |
//! | `embedding_probe_budget` | **no** | ditto — probe only affects which plan wins, not its validity |
//! | `profile` | **no** | observability-only: routed output is bit-identical either way |
//!
//! Excluding the effort knobs means a parameter sweep that varies `seed`
//! per submission (a common client habit) still enjoys a 100% hit rate
//! after the first route. Callers that *need* per-seed outputs (e.g. a
//! reproducibility harness) disable the cache (capacity 0).
//!
//! # Memory discipline
//!
//! The cache is a bounded LRU: inserting beyond `capacity` evicts the
//! least-recently-used plan. Plans are handed out behind `Arc`, so an
//! eviction never invalidates a plan another thread is concurrently
//! rebinding — the allocation is freed when the last user drops it.
//! [`PlanCacheStats::approx_bytes`] tracks an estimate of resident plan
//! bytes for the `/metrics` gauge.
//!
//! # Example
//!
//! ```
//! use sabre::{PlanCache, SabreConfig, SabreRouter};
//! use sabre_circuit::{Circuit, Qubit};
//! use sabre_topology::devices;
//!
//! let tokyo = devices::ibm_q20_tokyo();
//! let config = SabreConfig::fast();
//! let router = SabreRouter::new(tokyo.graph().clone(), config)?;
//!
//! let ansatz = |theta: f64| {
//!     let mut c = Circuit::new(6);
//!     for i in 0..5u32 {
//!         c.rz(Qubit(i), theta);
//!         c.cx(Qubit(i), Qubit(i + 1));
//!     }
//!     c
//! };
//!
//! let cache = PlanCache::with_capacity(64);
//! // First submission: full search, then the plan is cached.
//! let first = router.route(&ansatz(0.1))?;
//! cache.insert(&ansatz(0.1), tokyo.graph(), None, &config, &first);
//!
//! // Re-parameterized submission: zero search steps.
//! let hit = cache
//!     .lookup(&ansatz(2.7), tokyo.graph(), None, &config)
//!     .expect("same structure must hit");
//! assert_eq!(hit.total_search_steps(), 0);
//! assert_eq!(hit.best, router.route(&ansatz(2.7))?.best);
//! # Ok::<(), sabre::RouteError>(())
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use sabre_circuit::fingerprint::Fingerprinter;
use sabre_circuit::{Circuit, DependencyDag, ExecutionFrontier, Gate};
use sabre_topology::noise::NoiseModel;
use sabre_topology::CouplingGraph;

use crate::quality::PlanQuality;
use crate::{RoutedCircuit, SabreConfig, SabreResult, TraversalReport};

/// A routed plan for one circuit structure: everything needed to answer a
/// re-parameterized submission without searching, plus everything needed
/// to verify on a hit that the fingerprint key really matches.
#[derive(Debug)]
pub struct RoutedPlan {
    /// The circuit the plan was routed from (first submission); hits
    /// verify structural equality against it, and its parameter layout
    /// defines the [`RoutedPlan::bind_map`] domain.
    structure: Circuit,
    /// The device the plan targets, for hit verification.
    graph: Arc<CouplingGraph>,
    /// Calibration the plan was routed under (`None` = hop distances).
    noise: Option<NoiseModel>,
    /// The config the plan was routed under. Only the objective fields
    /// are keyed, but the full config is kept so `routed_config` can
    /// report the provenance.
    config: SabreConfig,
    /// The full first-route result; `rebind` clones its `best` skeleton.
    result: SabreResult,
    /// `bind_map[i]` = position in `result.best.physical` of original
    /// gate `i`. Inserted SWAPs occupy the remaining positions.
    bind_map: Vec<u32>,
    /// `(original gate index, routed position)` for every structure gate
    /// that carries parameters — the only gates a rebind must restamp.
    /// Precomputed at insert so the rebind hot loop skips the
    /// parameter-free majority (CX ladders) instead of testing each gate.
    param_slots: Vec<(u32, u32)>,
    /// Quality report of the routed skeleton, computed once at insert.
    /// Rebinding only restamps parameters — structure, SWAPs, depth, and
    /// the fidelity estimate are all invariant — so every hit serves this
    /// copy with zero recompute.
    quality: PlanQuality,
}

impl RoutedPlan {
    /// Builds a plan from a finished route, recovering the original-gate →
    /// routed-position mapping by deterministic replay. Returns `None` if
    /// the replay cannot account for every physical gate (e.g. the result
    /// was not produced from `structure`), in which case nothing is cached.
    fn from_route(
        structure: Circuit,
        graph: Arc<CouplingGraph>,
        noise: Option<NoiseModel>,
        config: SabreConfig,
        result: SabreResult,
    ) -> Option<Self> {
        let bind_map = build_bind_map(&structure, &result.best)?;
        let quality = PlanQuality::of_routed(&structure, &result.best, noise.as_ref());
        let param_slots = structure
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, gate)| !gate.params().is_empty())
            .map(|(idx, _)| (idx as u32, bind_map[idx]))
            .collect();
        Some(RoutedPlan {
            structure,
            graph,
            noise,
            config,
            result,
            bind_map,
            param_slots,
            quality,
        })
    }

    /// The config the plan was routed under (provenance for responses).
    pub fn routed_config(&self) -> &SabreConfig {
        &self.config
    }

    /// The quality report computed when the plan was first cached.
    /// Parameters don't change structure, so this is byte-identical to
    /// recomputing quality on any rebind of the plan.
    pub fn quality(&self) -> PlanQuality {
        self.quality
    }

    /// Stamps `circuit`'s parameters (and name) into the cached skeleton:
    /// a complete [`SabreResult`] with **zero search steps** whose `best`
    /// is bit-identical to freshly routing `circuit` under the plan's
    /// configuration. `elapsed` reports the rebind wall time;
    /// `traversals` is empty, so
    /// [`SabreResult::total_search_steps`] returns 0 — the
    /// assertion hook for "this submission did no search".
    pub fn rebind(&self, circuit: &Circuit) -> SabreResult {
        let start = Instant::now();
        let mut physical = self.result.best.physical.clone();
        physical.set_name(circuit.name());
        let gates = circuit.gates();
        for &(idx, pos) in &self.param_slots {
            physical.replace_params(pos as usize, *gates[idx as usize].params());
        }
        SabreResult {
            best: RoutedCircuit {
                physical,
                initial_layout: self.result.best.initial_layout.clone(),
                final_layout: self.result.best.final_layout.clone(),
                num_swaps: self.result.best.num_swaps,
                search_steps: self.result.best.search_steps,
                forced_routings: self.result.best.forced_routings,
            },
            best_restart: self.result.best_restart,
            perfect_placement: self.result.perfect_placement,
            traversals: Vec::new(),
            first_traversal_added_gates: self.result.first_traversal_added_gates,
            elapsed: start.elapsed(),
            profile: None,
        }
    }

    /// Estimated resident bytes of this plan (gate storage, bind map,
    /// layouts, traversal telemetry, and the graph/noise copies it pins).
    fn approx_bytes(&self) -> usize {
        let gate = std::mem::size_of::<Gate>();
        let layouts = 4 * self.result.best.initial_layout.len() * std::mem::size_of::<u32>();
        std::mem::size_of::<RoutedPlan>()
            + self.structure.num_gates() * gate
            + self.result.best.physical.num_gates() * gate
            + self.bind_map.len() * std::mem::size_of::<u32>()
            + self.param_slots.len() * std::mem::size_of::<(u32, u32)>()
            + layouts
            + self.result.traversals.len() * std::mem::size_of::<TraversalReport>()
            + self.graph.num_edges() * 2 * std::mem::size_of::<u32>()
    }

    /// Whether this plan answers exactly the question `(circuit structure,
    /// graph, noise, objective config)` — the hit-time verification that
    /// makes a fingerprint collision a bypass instead of an aliasing bug.
    fn answers(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        noise: Option<&NoiseModel>,
        config: &SabreConfig,
    ) -> bool {
        self.structure.same_structure(circuit)
            && *self.graph == *graph
            && self.noise.as_ref() == noise
            && same_objective(&self.config, config)
    }
}

/// Recovers `original gate index → routed position` by replaying the
/// routed circuit against the structure's dependency DAG.
///
/// Walk the physical gates in order, tracking the layout. Each physical
/// gate either matches a currently-ready original gate under the layout
/// (record its position, retire it) or is an inserted SWAP (apply it to
/// the layout). The match is unambiguous: the layout is a bijection, so
/// two distinct ready gates can never map onto the same physical
/// operands, and when the router emits an inserted SWAP its execute-drain
/// has reached fixpoint — no ready gate is executable, so none can match
/// a coupled SWAP pair. (An *original* `Swap` gate matches as a ready
/// gate first and correctly leaves the layout unchanged; it carries no
/// parameters, so even a hypothetical misattribution could not corrupt a
/// rebind.)
fn build_bind_map(structure: &Circuit, routed: &RoutedCircuit) -> Option<Vec<u32>> {
    let dag = DependencyDag::new(structure);
    let mut frontier = ExecutionFrontier::new(&dag);
    let mut layout = routed.initial_layout.clone();
    let mut map = vec![u32::MAX; structure.num_gates()];
    for (pos, pg) in routed.physical.gates().iter().enumerate() {
        let matched = frontier.ready().iter().copied().find(|&idx| {
            structure.gates()[idx]
                .map_qubits(|l| layout.phys_of(l))
                .same_structure(pg)
        });
        match matched {
            Some(idx) => {
                map[idx] = pos as u32;
                frontier.retire(&dag, idx);
            }
            None if pg.is_swap() => {
                let (a, Some(b)) = pg.qubits() else {
                    return None;
                };
                layout.swap_physical(a, b);
            }
            None => return None,
        }
    }
    if frontier.is_complete() {
        Some(map)
    } else {
        None
    }
}

/// The objective-defining subset of [`SabreConfig`] compared field-by-
/// field on every hit (see the [module docs](self) for the field table).
fn same_objective(a: &SabreConfig, b: &SabreConfig) -> bool {
    a.heuristic == b.heuristic
        && a.extended_set_size == b.extended_set_size
        && a.extended_set_weight == b.extended_set_weight
        && a.decay_delta == b.decay_delta
        && a.decay_reset_interval == b.decay_reset_interval
        && a.livelock_slack == b.livelock_slack
}

/// The cache key: structure × device × noise × normalized config, folded
/// into one 64-bit content fingerprint (collisions are handled by
/// hit-time verification, never trusted).
fn plan_key(
    circuit: &Circuit,
    graph: &CouplingGraph,
    noise: Option<&NoiseModel>,
    config: &SabreConfig,
) -> u64 {
    let mut fp = Fingerprinter::new("sabre/plan-cache-key/v1");
    // A strided sample, not the full structural fingerprint: the key is
    // only a bucket selector (every hit is re-verified field-by-field),
    // and hashing all gates of a deep circuit would dominate the rebind
    // hot path the cache exists to keep cheap.
    fp.write_u64(circuit.structural_digest(64));
    fp.write_u64(graph.fingerprint());
    match noise {
        Some(model) => {
            fp.write_u64(1);
            fp.write_u64(model.fingerprint());
        }
        None => fp.write_u64(0),
    }
    fp.write_u64(config.heuristic as u64);
    fp.write_u64(config.extended_set_size as u64);
    fp.write_f64(config.extended_set_weight);
    fp.write_f64(config.decay_delta);
    fp.write_u64(u64::from(config.decay_reset_interval));
    fp.write_u64(config.livelock_slack as u64);
    fp.finish()
}

/// One cache slot: the plan plus its LRU recency stamp. The stamp is
/// atomic so lookups (read lock) can refresh recency without writer
/// contention.
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<RoutedPlan>,
    last_used: AtomicU64,
    bytes: usize,
}

/// Counter snapshot from [`PlanCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Submissions answered by rebinding a cached plan (zero search).
    pub hits: u64,
    /// Submissions that had to route (including verification bypasses).
    pub misses: u64,
    /// Plans evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Estimated resident bytes of all cached plans.
    pub approx_bytes: u64,
}

/// Bounded-LRU cache of [`RoutedPlan`]s, shared across threads behind an
/// `RwLock` — see the [module docs](self) for the key/collision design.
/// A capacity of **0 disables the cache**: lookups return `None` without
/// counting a miss and inserts are dropped, which callers needing strict
/// per-seed reproducibility use to opt out.
#[derive(Debug)]
pub struct PlanCache {
    entries: RwLock<HashMap<u64, PlanEntry>>,
    capacity: usize,
    /// Monotonic recency clock; bumped on every hit and insert.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl Default for PlanCache {
    /// A cache with the default capacity (256 plans).
    fn default() -> Self {
        PlanCache::with_capacity(PlanCache::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default number of resident plans; enough for hundreds of hot
    /// ansatz shapes while bounding memory to a few MB of skeletons.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty cache holding at most `capacity` plans (0 = disabled).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            entries: RwLock::new(HashMap::new()),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a plan for `circuit`'s structure on `(graph, noise,
    /// config)` and, on a verified hit, rebinds `circuit`'s parameters
    /// into it. Returns `None` on miss, verification bypass, or when the
    /// cache is disabled.
    pub fn lookup(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        noise: Option<&NoiseModel>,
        config: &SabreConfig,
    ) -> Option<SabreResult> {
        Some(
            self.lookup_plan(circuit, graph, noise, config)?
                .rebind(circuit),
        )
    }

    /// [`PlanCache::lookup`] plus the plan's cached [`PlanQuality`] —
    /// the serving layer's hot-path variant, which must not pay a depth
    /// recomputation per hit.
    pub fn lookup_with_quality(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        noise: Option<&NoiseModel>,
        config: &SabreConfig,
    ) -> Option<(SabreResult, PlanQuality)> {
        let plan = self.lookup_plan(circuit, graph, noise, config)?;
        Some((plan.rebind(circuit), plan.quality()))
    }

    /// Shared hit path: key, verified match, and counter bookkeeping.
    /// Kept separate from rebinding so the plain [`PlanCache::lookup`]
    /// hot path pays nothing for quality plumbing.
    fn lookup_plan(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        noise: Option<&NoiseModel>,
        config: &SabreConfig,
    ) -> Option<Arc<RoutedPlan>> {
        if self.capacity == 0 {
            return None;
        }
        let key = plan_key(circuit, graph, noise, config);
        let plan = {
            let entries = self.entries.read().expect("plan cache poisoned");
            match entries.get(&key) {
                Some(entry) => {
                    entry.last_used.store(
                        self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                        Ordering::Relaxed,
                    );
                    entry.plan.clone()
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        };
        if !plan.answers(circuit, graph, noise, config) {
            // Fingerprint collision with a different question: route
            // fresh rather than alias (the stored plan stays resident).
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(plan)
    }

    /// Caches the plan behind a finished first route of `circuit`.
    /// Builds the bind map by replay *before* taking the write lock; if
    /// the replay cannot account for the result (not routed from
    /// `circuit`), nothing is cached. An existing entry under the same
    /// key is kept — first insert wins, matching [`crate::DeviceCache`]'s
    /// race discipline — and the LRU bound evicts the least-recently-used
    /// plan when the insert overflows `capacity`.
    pub fn insert(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        noise: Option<&NoiseModel>,
        config: &SabreConfig,
        result: &SabreResult,
    ) {
        if self.capacity == 0 {
            return;
        }
        let key = plan_key(circuit, graph, noise, config);
        let Some(plan) = RoutedPlan::from_route(
            circuit.clone(),
            Arc::new(graph.clone()),
            noise.cloned(),
            *config,
            result.clone(),
        ) else {
            return;
        };
        let bytes = plan.approx_bytes();
        let entry = PlanEntry {
            plan: Arc::new(plan),
            last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
            bytes,
        };
        let mut entries = self.entries.write().expect("plan cache poisoned");
        if entries.contains_key(&key) {
            return;
        }
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        entries.insert(key, entry);
        while entries.len() > self.capacity {
            let Some((&victim, _)) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
            else {
                break;
            };
            // In-flight `Arc<RoutedPlan>` clones stay valid: removal only
            // drops the cache's reference.
            let evicted = entries.remove(&victim).expect("victim key present");
            self.bytes
                .fetch_sub(evicted.bytes as u64, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of plans currently resident.
    pub fn len(&self) -> usize {
        self.entries.read().expect("plan cache poisoned").len()
    }

    /// Whether no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan. Counters are not reset.
    pub fn clear(&self) {
        let mut entries = self.entries.write().expect("plan cache poisoned");
        entries.clear();
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// A snapshot of the hit/miss/eviction counters and size gauges.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            approx_bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SabreRouter;
    use sabre_circuit::Qubit;
    use sabre_topology::devices;

    /// A linear-entanglement ansatz layer: Rz(θ) on every qubit, then a
    /// CX ladder — the canonical VQA re-submission shape.
    fn ansatz(n: u32, depth: usize, theta: f64) -> Circuit {
        let mut c = Circuit::new(n);
        for layer in 0..depth {
            for q in 0..n {
                c.rz(Qubit(q), theta + layer as f64 + f64::from(q) * 0.01);
            }
            for q in 0..n - 1 {
                c.cx(Qubit(q), Qubit(q + 1));
            }
        }
        c
    }

    #[test]
    fn rebind_is_bit_identical_to_fresh_route() {
        let tokyo = devices::ibm_q20_tokyo();
        let config = SabreConfig::fast();
        let router = SabreRouter::new(tokyo.graph().clone(), config).unwrap();
        let cache = PlanCache::with_capacity(8);

        let first = ansatz(8, 3, 0.0);
        let routed = router.route(&first).unwrap();
        cache.insert(&first, tokyo.graph(), None, &config, &routed);

        let resubmit = ansatz(8, 3, 1.7);
        let hit = cache
            .lookup(&resubmit, tokyo.graph(), None, &config)
            .expect("same structure must hit");
        assert_eq!(hit.total_search_steps(), 0, "a hit performs no search");
        let fresh = router.route(&resubmit).unwrap();
        assert_eq!(hit.best, fresh.best);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn different_structure_misses() {
        let tokyo = devices::ibm_q20_tokyo();
        let config = SabreConfig::fast();
        let router = SabreRouter::new(tokyo.graph().clone(), config).unwrap();
        let cache = PlanCache::with_capacity(8);
        let a = ansatz(6, 2, 0.0);
        cache.insert(&a, tokyo.graph(), None, &config, &router.route(&a).unwrap());

        // One extra layer: different structure, must miss.
        assert!(cache
            .lookup(&ansatz(6, 3, 0.0), tokyo.graph(), None, &config)
            .is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn effort_knobs_do_not_fragment_the_key() {
        let tokyo = devices::ibm_q20_tokyo();
        let routed_under = SabreConfig::fast();
        let router = SabreRouter::new(tokyo.graph().clone(), routed_under).unwrap();
        let cache = PlanCache::with_capacity(8);
        let a = ansatz(6, 2, 0.0);
        cache.insert(
            &a,
            tokyo.graph(),
            None,
            &routed_under,
            &router.route(&a).unwrap(),
        );

        // Different seed / restarts / traversals / probe budget: same key.
        let other_effort = SabreConfig {
            seed: 777,
            num_restarts: 9,
            num_traversals: 3,
            embedding_probe_budget: 0,
            ..routed_under
        };
        assert!(cache
            .lookup(&ansatz(6, 2, 9.9), tokyo.graph(), None, &other_effort)
            .is_some());

        // An objective change (extended-set weight) must miss.
        let other_objective = SabreConfig {
            extended_set_weight: 0.25,
            ..routed_under
        };
        assert!(cache
            .lookup(&ansatz(6, 2, 9.9), tokyo.graph(), None, &other_objective)
            .is_none());
    }

    #[test]
    fn noise_model_participates_in_the_key() {
        let tokyo = devices::ibm_q20_tokyo();
        let config = SabreConfig::fast();
        let noise = NoiseModel::calibrated(tokyo.graph(), 0.02, 4.0, 1);
        let router = SabreRouter::with_noise(tokyo.graph().clone(), config, &noise).unwrap();
        let cache = PlanCache::with_capacity(8);
        let a = ansatz(6, 2, 0.0);
        cache.insert(
            &a,
            tokyo.graph(),
            Some(&noise),
            &config,
            &router.route(&a).unwrap(),
        );

        assert!(
            cache
                .lookup(&ansatz(6, 2, 3.0), tokyo.graph(), Some(&noise), &config)
                .is_some(),
            "same calibration hits"
        );
        assert!(
            cache
                .lookup(&ansatz(6, 2, 3.0), tokyo.graph(), None, &config)
                .is_none(),
            "noiseless submission must not reuse a noise-aware plan"
        );
        let other = NoiseModel::calibrated(tokyo.graph(), 0.02, 4.0, 2);
        assert!(
            cache
                .lookup(&ansatz(6, 2, 3.0), tokyo.graph(), Some(&other), &config)
                .is_none(),
            "a different calibration must not reuse the plan"
        );
    }

    #[test]
    fn lru_eviction_is_bounded_and_keeps_hot_plans() {
        let device = devices::linear(6);
        let config = SabreConfig::fast();
        let router = SabreRouter::new(device.graph().clone(), config).unwrap();
        let cache = PlanCache::with_capacity(2);

        let shapes: Vec<Circuit> = (1..=3).map(|d| ansatz(6, d, 0.0)).collect();
        for c in &shapes[..2] {
            cache.insert(c, device.graph(), None, &config, &router.route(c).unwrap());
        }
        // Touch shape 0 so shape 1 is the LRU victim.
        assert!(cache
            .lookup(&shapes[0], device.graph(), None, &config)
            .is_some());
        cache.insert(
            &shapes[2],
            device.graph(),
            None,
            &config,
            &router.route(&shapes[2]).unwrap(),
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(stats.approx_bytes > 0);
        assert!(cache
            .lookup(&shapes[0], device.graph(), None, &config)
            .is_some());
        assert!(
            cache
                .lookup(&shapes[1], device.graph(), None, &config)
                .is_none(),
            "the untouched plan was evicted"
        );
    }

    #[test]
    fn eviction_does_not_invalidate_in_flight_plans() {
        let device = devices::linear(4);
        let config = SabreConfig::fast();
        let router = SabreRouter::new(device.graph().clone(), config).unwrap();
        let cache = PlanCache::with_capacity(1);
        let a = ansatz(4, 1, 0.0);
        cache.insert(
            &a,
            device.graph(),
            None,
            &config,
            &router.route(&a).unwrap(),
        );

        // Hold the plan's Arc (simulating a concurrent rebind)...
        let held = {
            let entries = cache.entries.read().unwrap();
            entries.values().next().unwrap().plan.clone()
        };
        // ...then evict it by inserting a different shape.
        let b = ansatz(4, 2, 0.0);
        cache.insert(
            &b,
            device.graph(),
            None,
            &config,
            &router.route(&b).unwrap(),
        );
        assert_eq!(cache.stats().evictions, 1);
        // The held plan still rebinds correctly.
        let rebound = held.rebind(&ansatz(4, 1, 5.0));
        assert_eq!(rebound.best, router.route(&ansatz(4, 1, 5.0)).unwrap().best);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let device = devices::linear(4);
        let config = SabreConfig::fast();
        let router = SabreRouter::new(device.graph().clone(), config).unwrap();
        let cache = PlanCache::with_capacity(0);
        let a = ansatz(4, 1, 0.0);
        cache.insert(
            &a,
            device.graph(),
            None,
            &config,
            &router.route(&a).unwrap(),
        );
        assert!(cache.is_empty());
        assert!(cache.lookup(&a, device.graph(), None, &config).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "disabled = uncounted");
    }

    #[test]
    fn bind_map_accounts_for_inserted_swaps() {
        // Force SWAPs: route a long-range CX chain on a line.
        let device = devices::linear(5);
        let config = SabreConfig::fast();
        let router = SabreRouter::new(device.graph().clone(), config).unwrap();
        // A degree-4 star cannot embed in a path, so SWAPs are inserted.
        let mut c = Circuit::new(5);
        c.rz(Qubit(0), 0.3);
        for q in 1..5u32 {
            c.cx(Qubit(0), Qubit(q));
        }
        c.rz(Qubit(4), 0.9);
        let routed = router.route(&c).unwrap();
        assert!(routed.best.num_swaps > 0, "test needs inserted SWAPs");

        let plan = RoutedPlan::from_route(
            c.clone(),
            Arc::new(device.graph().clone()),
            None,
            config,
            routed.clone(),
        )
        .expect("replay must succeed");
        let mut resub = c.clone();
        resub.replace_params(0, sabre_circuit::Params::one(-2.2));
        resub.replace_params(5, sabre_circuit::Params::one(0.0));
        let rebound = plan.rebind(&resub);
        assert_eq!(rebound.best, router.route(&resub).unwrap().best);
    }

    #[test]
    fn replay_rejects_a_foreign_result() {
        let device = devices::linear(4);
        let config = SabreConfig::fast();
        let router = SabreRouter::new(device.graph().clone(), config).unwrap();
        let a = ansatz(4, 1, 0.0);
        let b = ansatz(4, 2, 0.0);
        let routed_b = router.route(&b).unwrap();
        assert!(
            RoutedPlan::from_route(a, Arc::new(device.graph().clone()), None, config, routed_b)
                .is_none(),
            "a result not routed from the structure must be rejected"
        );
    }
}
