//! The retained **reference implementation** of the routing hot loop.
//!
//! This is the seed `route_pass` exactly as it was before the incremental
//! search engine (the crate-private `search` module) replaced it: per
//! candidate SWAP it mutates the layout, re-sums every front/extended
//! distance through the original `score_swap`, and restores the layout;
//! per search step it allocates the front layer, the extended set (fresh
//! BFS state included), and the tie-break pool.
//!
//! It exists for two jobs and must not be "optimized":
//!
//! - **Differential testing** — `tests/hot_loop_equivalence.rs` asserts
//!   the production engine's [`crate::RoutedCircuit`] is identical to this
//!   one for the same inputs, which is what pins the incremental engine's
//!   bit-exactness contract.
//! - **Benchmark baseline** — `benches/routing_hot_loop.rs` measures the
//!   production engine's per-step speedup against it.

use rand::rngs::StdRng;
use rand::Rng;
use sabre_circuit::{Circuit, DependencyDag, ExecutionFrontier, Qubit};
use sabre_topology::{CouplingGraph, WeightedDistanceMatrix};

use crate::heuristic::{score_swap, HeuristicInputs};
use crate::router::{force_route, DecayState, SCORE_EPSILON};
use crate::{Layout, RoutedCircuit, SabreConfig};

/// The candidate-sweep scratch exactly as the seed hot loop had it:
/// first-encounter ordering and bitset dedup, but with an
/// [`CouplingGraph::edge_index`] binary search per neighbor visit and per
/// cleared bit (the cost the production scratch in [`crate::search`]
/// replaced with the precomputed
/// [`CouplingGraph::neighbor_edge_ids`] table).
struct CandidateScratch {
    seen: Vec<bool>,
    buf: Vec<(Qubit, Qubit)>,
}

impl CandidateScratch {
    fn new(graph: &CouplingGraph) -> Self {
        CandidateScratch {
            seen: vec![false; graph.num_edges()],
            buf: Vec::new(),
        }
    }

    fn collect(
        &mut self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        layout: &Layout,
        front: &[usize],
    ) -> &[(Qubit, Qubit)] {
        for &(a, b) in &self.buf {
            self.seen[graph.edge_index(a, b).expect("candidate is an edge")] = false;
        }
        self.buf.clear();
        for &idx in front {
            let (a, b) = circuit.gates()[idx].qubits();
            let b = b.expect("front layer holds two-qubit gates");
            for logical in [a, b] {
                let phys = layout.phys_of(logical);
                for &nb in graph.neighbors(phys) {
                    let edge_id = graph
                        .edge_index(phys, nb)
                        .expect("neighbor pairs are edges");
                    if !self.seen[edge_id] {
                        self.seen[edge_id] = true;
                        self.buf
                            .push(if phys < nb { (phys, nb) } else { (nb, phys) });
                    }
                }
            }
        }
        &self.buf
    }
}

/// One full traversal of Algorithm 1 with the original full-resummation
/// scorer — same contract as [`crate::router::route_pass`], kept as the
/// differential-testing and benchmarking baseline (see the
/// [module docs](self)).
///
/// # Panics
///
/// Panics if the layout size differs from the device size or the circuit
/// uses more qubits than the device has, like
/// [`crate::router::route_pass`].
pub fn reference_route_pass(
    circuit: &Circuit,
    graph: &CouplingGraph,
    dist: &WeightedDistanceMatrix,
    initial_layout: Layout,
    config: &SabreConfig,
    rng: &mut StdRng,
) -> RoutedCircuit {
    let n_phys = graph.num_qubits();
    assert_eq!(
        initial_layout.len(),
        n_phys as usize,
        "layout must cover every physical qubit"
    );
    assert!(
        circuit.num_qubits() <= n_phys,
        "circuit does not fit on the device"
    );

    let dag = DependencyDag::new(circuit);
    let mut frontier = ExecutionFrontier::new(&dag);
    let mut layout = initial_layout.clone();
    let mut out = Circuit::with_name(n_phys, circuit.name());
    let mut decay = DecayState::new(n_phys as usize, config);
    let mut scratch = CandidateScratch::new(graph);
    let mut swaps_since_progress: usize = 0;
    let mut num_swaps = 0usize;
    let mut search_steps = 0usize;
    let mut forced_routings = 0usize;

    loop {
        // Execute every gate that is logically ready and physically
        // executable, repeating until the frontier stalls (the
        // `Execute_gate_list` loop of Algorithm 1).
        loop {
            let mut executed_any = false;
            let ready: Vec<usize> = frontier.ready().to_vec();
            for idx in ready {
                let gate = &circuit.gates()[idx];
                match gate.qubits() {
                    // Single-qubit gates never block: emit on the wire the
                    // logical qubit currently occupies (§IV-A).
                    (_q, None) => {
                        out.push(gate.map_qubits(|l| layout.phys_of(l)));
                        frontier.mark_executed(&dag, idx);
                        executed_any = true;
                    }
                    (a, Some(b)) => {
                        let (pa, pb) = (layout.phys_of(a), layout.phys_of(b));
                        if graph.are_coupled(pa, pb) {
                            out.push(gate.map_qubits(|l| layout.phys_of(l)));
                            frontier.mark_executed(&dag, idx);
                            executed_any = true;
                            // Paper §V: decay resets after a CNOT executes.
                            decay.on_gate_executed();
                            swaps_since_progress = 0;
                        }
                    }
                }
            }
            if !executed_any {
                break;
            }
        }
        if frontier.is_complete() {
            break;
        }

        // Front layer F: the ready-but-blocked two-qubit gates.
        let front: Vec<usize> = frontier
            .ready()
            .iter()
            .copied()
            .filter(|&i| circuit.gates()[i].is_two_qubit())
            .collect();
        debug_assert!(
            !front.is_empty(),
            "stalled frontier must contain a blocked two-qubit gate"
        );

        // Livelock guard (never fires with the paper configuration; see
        // DESIGN.md implementation notes).
        let limit = 3 * n_phys as usize + config.livelock_slack;
        if swaps_since_progress >= limit {
            forced_routings += 1;
            let inserted = force_route(circuit, graph, &mut layout, &mut out, front[0]);
            num_swaps += inserted;
            search_steps += inserted;
            decay.on_forced_route();
            swaps_since_progress = 0;
            continue;
        }

        let extended = dag.extended_set(circuit, &front, config.extended_set_size);
        let candidates = scratch.collect(circuit, graph, &layout, &front);
        debug_assert!(
            !candidates.is_empty(),
            "connected device always has candidates"
        );

        let inputs = HeuristicInputs {
            dist,
            circuit,
            front: &front,
            extended: &extended,
            weight: config.extended_set_weight,
            kind: config.heuristic,
        };
        let mut best_score = f64::INFINITY;
        let mut best: Vec<(Qubit, Qubit)> = Vec::new();
        for &swap in candidates {
            let score = score_swap(&inputs, &mut layout, decay.values(), swap);
            if score < best_score - SCORE_EPSILON {
                best_score = score;
                best.clear();
                best.push(swap);
            } else if (score - best_score).abs() <= SCORE_EPSILON {
                best.push(swap);
            }
        }
        let (sa, sb) = best[rng.gen_range(0..best.len())];

        // Commit: emit the SWAP, update π, bump decay.
        out.swap(sa, sb);
        layout.swap_physical(sa, sb);
        num_swaps += 1;
        search_steps += 1;
        swaps_since_progress += 1;
        decay.on_swap_selected(sa, sb);
    }

    debug_assert!(layout.is_consistent());
    RoutedCircuit {
        physical: out,
        initial_layout,
        final_layout: layout,
        num_swaps,
        search_steps,
        forced_routings,
    }
}
