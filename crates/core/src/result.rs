use std::fmt;
use std::time::Duration;

use sabre_circuit::Circuit;
use sabre_json::JsonValue;

use crate::profile::RouteProfile;
use crate::Layout;

/// A layout as JSON: the logical→physical mapping as an array of physical
/// indices (`value[i]` = physical qubit hosting logical qubit `i`).
pub(crate) fn layout_to_json(layout: &Layout) -> JsonValue {
    layout
        .logical_to_physical()
        .iter()
        .map(|q| u64::from(q.0))
        .collect()
}

/// The output of routing one circuit: a hardware-compliant physical
/// circuit plus the mappings relating it to the logical input.
///
/// The `physical` circuit keeps inserted SWAPs as explicit `SWAP` gates;
/// use [`RoutedCircuit::decomposed`] for the paper's cost model where one
/// SWAP is three CNOTs (Figure 3a).
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedCircuit {
    /// The transformed circuit over **physical** wires (the device size),
    /// with SWAPs left as single gates.
    pub physical: Circuit,
    /// `π₀`: where each logical qubit starts (index = logical, value =
    /// physical).
    pub initial_layout: Layout,
    /// `π_f`: where each logical qubit ends after all inserted SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub num_swaps: usize,
    /// Search effort. For SABRE's `route_pass`: one step per inserted
    /// SWAP, whether selected by scoring candidates (Algorithm 1
    /// iterations) or inserted by the livelock guard's forced routing, so
    /// there `search_steps == num_swaps`. Baseline routers populate their
    /// own notion of effort (e.g. BKA reports nodes expanded), so the
    /// equality is **not** an invariant of this struct.
    pub search_steps: usize,
    /// How often the livelock guard forced a shortest-path routing; 0 on
    /// every benchmark configuration (tests assert this).
    pub forced_routings: usize,
}

impl RoutedCircuit {
    /// Additional gates in the paper's accounting: `3 × num_swaps`.
    pub fn added_gates(&self) -> usize {
        3 * self.num_swaps
    }

    /// The physical circuit with each SWAP expanded into 3 CNOTs — the
    /// elementary-gate-set form whose size and depth Table II reports.
    pub fn decomposed(&self) -> Circuit {
        self.physical.with_swaps_decomposed()
    }

    /// Total gates after SWAP decomposition (`g_tot = g_ori + g_add`).
    pub fn total_gates(&self) -> usize {
        self.physical.num_gates() + 2 * self.num_swaps
    }

    /// Depth of the decomposed circuit (`d` of the output).
    pub fn depth(&self) -> usize {
        self.decomposed().depth()
    }

    /// The routing artifact as a JSON object — the serialization hook the
    /// serving layer builds its `/route` responses from.
    ///
    /// Contains the summary counters (`num_swaps`, `search_steps`,
    /// `forced_routings`, `added_gates`, `num_gates`, `depth`) and both
    /// layouts as logical→physical index arrays; the physical gate list
    /// itself is *not* embedded (serialize it separately, e.g. as OpenQASM
    /// via `sabre_qasm::to_qasm`, when the caller asked for it).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("num_swaps", self.num_swaps.into()),
            ("search_steps", self.search_steps.into()),
            ("forced_routings", self.forced_routings.into()),
            ("added_gates", self.added_gates().into()),
            ("num_gates", self.physical.num_gates().into()),
            ("depth", self.depth().into()),
            ("initial_layout", layout_to_json(&self.initial_layout)),
            ("final_layout", layout_to_json(&self.final_layout)),
        ])
    }
}

impl fmt::Display for RoutedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routed `{}`: {} swaps (+{} gates), depth {}",
            self.physical.name(),
            self.num_swaps,
            self.added_gates(),
            self.depth()
        )
    }
}

/// What one traversal of one restart produced (for reporting `g_la` vs
/// `g_op`-style numbers and the scalability study).
#[derive(Clone, Debug, PartialEq)]
pub struct TraversalReport {
    /// Restart index (0-based).
    pub restart: usize,
    /// Traversal index within the restart (0 = first forward pass).
    pub traversal: usize,
    /// Whether this traversal ran the reversed circuit.
    pub reversed: bool,
    /// SWAPs inserted during this traversal.
    pub num_swaps: usize,
}

/// Complete result of [`SabreRouter::route`]: the best routed circuit over
/// all restarts plus per-traversal telemetry.
///
/// [`SabreRouter::route`]: crate::SabreRouter::route
#[derive(Clone, Debug)]
pub struct SabreResult {
    /// The best routing found (fewest added gates, ties broken by depth).
    pub best: RoutedCircuit,
    /// Which restart produced `best` — or, when [`Self::perfect_placement`]
    /// is `true`, the best restart the embedding probe beat.
    pub best_restart: usize,
    /// `best` came from the zero-SWAP perfect-placement probe
    /// ([`crate::SabreConfig::embedding_probe_budget`]) rather than from a
    /// random restart.
    pub perfect_placement: bool,
    /// SWAP counts for every traversal of every restart.
    pub traversals: Vec<TraversalReport>,
    /// `g_la`-style metric: added gates of the best *first* traversal
    /// (look-ahead heuristic with a random initial mapping, before any
    /// reverse-traversal improvement).
    pub first_traversal_added_gates: usize,
    /// Wall-clock time of the whole routing call.
    pub elapsed: Duration,
    /// Hot-loop phase profile aggregated over every traversal of every
    /// restart (restart order), present iff the route ran with
    /// [`SabreConfig::profile`](crate::SabreConfig::profile) set.
    /// Deliberately **not** part of the deterministic-output contract:
    /// equality checks between routing runs compare [`Self::best`] and
    /// [`Self::traversals`], never this field.
    pub profile: Option<RouteProfile>,
}

impl SabreResult {
    /// Added gates of the final result (`g_op` when run with the paper's
    /// 3-traversal configuration).
    pub fn added_gates(&self) -> usize {
        self.best.added_gates()
    }

    /// Search steps summed over **every** traversal of every restart —
    /// the total hot-loop effort behind [`Self::elapsed`], as opposed to
    /// [`RoutedCircuit::search_steps`] which counts only the winning
    /// traversal. (For `route_pass` one step is one inserted SWAP, forced
    /// routings included, so this is the sum of per-traversal SWAP
    /// counts.)
    pub fn total_search_steps(&self) -> usize {
        self.traversals.iter().map(|t| t.num_swaps).sum()
    }

    /// Mean wall nanoseconds per search step over the whole routing call —
    /// the admission-control metric a serving layer exports (ROADMAP
    /// "per-step ns into the service layer's admission metrics"). Zero
    /// steps (e.g. a perfect placement on the first try) reports the full
    /// elapsed time against one step to stay finite.
    pub fn ns_per_step(&self) -> u128 {
        self.elapsed.as_nanos() / self.total_search_steps().max(1) as u128
    }

    /// The full result as a JSON object: the [`RoutedCircuit::to_json`]
    /// payload under `"best"`, plus restart/probe provenance and the
    /// timing telemetry (`elapsed_ns`, `total_search_steps`,
    /// `ns_per_step`). When the route ran with profiling enabled, the
    /// [`RouteProfile`] rides along under `"profile"`.
    pub fn to_json(&self) -> JsonValue {
        let mut json = JsonValue::object([
            ("best", self.best.to_json()),
            ("best_restart", self.best_restart.into()),
            ("perfect_placement", self.perfect_placement.into()),
            (
                "first_traversal_added_gates",
                self.first_traversal_added_gates.into(),
            ),
            ("total_search_steps", self.total_search_steps().into()),
            ("elapsed_ns", self.elapsed.as_nanos().into()),
            ("ns_per_step", self.ns_per_step().into()),
        ]);
        if let Some(profile) = &self.profile {
            if let JsonValue::Object(fields) = &mut json {
                fields.push(("profile".to_string(), profile.to_json()));
            }
        }
        json
    }
}

impl fmt::Display for SabreResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (best of {} restarts, {:.3}s)",
            self.best,
            self.traversals
                .iter()
                .map(|t| t.restart)
                .max()
                .map_or(1, |m| m + 1),
            self.elapsed.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_circuit::Qubit;

    fn sample_routed() -> RoutedCircuit {
        let mut physical = Circuit::with_name(3, "t");
        physical.cx(Qubit(0), Qubit(1));
        physical.swap(Qubit(1), Qubit(2));
        physical.cx(Qubit(0), Qubit(1));
        RoutedCircuit {
            physical,
            initial_layout: Layout::identity(3),
            final_layout: {
                let mut l = Layout::identity(3);
                l.swap_physical(Qubit(1), Qubit(2));
                l
            },
            num_swaps: 1,
            search_steps: 1,
            forced_routings: 0,
        }
    }

    #[test]
    fn added_gates_is_three_per_swap() {
        assert_eq!(sample_routed().added_gates(), 3);
    }

    #[test]
    fn total_gates_counts_decomposed_swaps() {
        let r = sample_routed();
        assert_eq!(r.total_gates(), 2 + 3);
        assert_eq!(r.decomposed().num_gates(), r.total_gates());
        assert_eq!(r.decomposed().num_swaps(), 0);
    }

    #[test]
    fn depth_uses_decomposed_form() {
        let r = sample_routed();
        // cx(0,1); [cx(1,2) cx(2,1) cx(1,2)]; cx(0,1) → depth 5 on wires.
        assert_eq!(r.depth(), 5);
    }

    #[test]
    fn display_summarizes() {
        let text = sample_routed().to_string();
        assert!(text.contains("1 swaps"));
        assert!(text.contains("+3 gates"));
    }

    #[test]
    fn routed_to_json_carries_counters_and_layouts() {
        let json = sample_routed().to_json();
        assert_eq!(json.get("num_swaps").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("added_gates").unwrap().as_usize(), Some(3));
        assert_eq!(json.get("depth").unwrap().as_usize(), Some(5));
        let initial: Vec<u64> = json
            .get("initial_layout")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(initial, [0, 1, 2]);
        let final_: Vec<u64> = json
            .get("final_layout")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(final_, [0, 2, 1]);
        // The document survives a serialization round trip.
        let text = json.to_compact();
        assert_eq!(sabre_json::JsonValue::parse(&text).unwrap(), json);
    }

    #[test]
    fn sabre_result_telemetry_sums_all_traversals() {
        let result = SabreResult {
            best: sample_routed(),
            best_restart: 1,
            perfect_placement: false,
            traversals: vec![
                TraversalReport {
                    restart: 0,
                    traversal: 0,
                    reversed: false,
                    num_swaps: 4,
                },
                TraversalReport {
                    restart: 0,
                    traversal: 1,
                    reversed: true,
                    num_swaps: 6,
                },
            ],
            first_traversal_added_gates: 12,
            elapsed: Duration::from_nanos(1000),
            profile: None,
        };
        assert_eq!(result.total_search_steps(), 10);
        assert_eq!(result.ns_per_step(), 100);
        let json = result.to_json();
        assert_eq!(json.get("total_search_steps").unwrap().as_usize(), Some(10));
        assert_eq!(json.get("elapsed_ns").unwrap().as_u64(), Some(1000));
        assert_eq!(json.get("ns_per_step").unwrap().as_u64(), Some(100));
        assert!(json.get("best").unwrap().get("num_swaps").is_some());
    }

    #[test]
    fn ns_per_step_survives_zero_steps() {
        let result = SabreResult {
            best: sample_routed(),
            best_restart: 0,
            perfect_placement: true,
            traversals: vec![],
            first_traversal_added_gates: 0,
            elapsed: Duration::from_nanos(42),
            profile: None,
        };
        assert_eq!(result.total_search_steps(), 0);
        assert_eq!(result.ns_per_step(), 42);
    }
}
