use std::fmt;
use std::time::Duration;

use sabre_circuit::Circuit;

use crate::Layout;

/// The output of routing one circuit: a hardware-compliant physical
/// circuit plus the mappings relating it to the logical input.
///
/// The `physical` circuit keeps inserted SWAPs as explicit `SWAP` gates;
/// use [`RoutedCircuit::decomposed`] for the paper's cost model where one
/// SWAP is three CNOTs (Figure 3a).
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedCircuit {
    /// The transformed circuit over **physical** wires (the device size),
    /// with SWAPs left as single gates.
    pub physical: Circuit,
    /// `π₀`: where each logical qubit starts (index = logical, value =
    /// physical).
    pub initial_layout: Layout,
    /// `π_f`: where each logical qubit ends after all inserted SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub num_swaps: usize,
    /// Search effort. For SABRE's `route_pass`: one step per inserted
    /// SWAP, whether selected by scoring candidates (Algorithm 1
    /// iterations) or inserted by the livelock guard's forced routing, so
    /// there `search_steps == num_swaps`. Baseline routers populate their
    /// own notion of effort (e.g. BKA reports nodes expanded), so the
    /// equality is **not** an invariant of this struct.
    pub search_steps: usize,
    /// How often the livelock guard forced a shortest-path routing; 0 on
    /// every benchmark configuration (tests assert this).
    pub forced_routings: usize,
}

impl RoutedCircuit {
    /// Additional gates in the paper's accounting: `3 × num_swaps`.
    pub fn added_gates(&self) -> usize {
        3 * self.num_swaps
    }

    /// The physical circuit with each SWAP expanded into 3 CNOTs — the
    /// elementary-gate-set form whose size and depth Table II reports.
    pub fn decomposed(&self) -> Circuit {
        self.physical.with_swaps_decomposed()
    }

    /// Total gates after SWAP decomposition (`g_tot = g_ori + g_add`).
    pub fn total_gates(&self) -> usize {
        self.physical.num_gates() + 2 * self.num_swaps
    }

    /// Depth of the decomposed circuit (`d` of the output).
    pub fn depth(&self) -> usize {
        self.decomposed().depth()
    }
}

impl fmt::Display for RoutedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routed `{}`: {} swaps (+{} gates), depth {}",
            self.physical.name(),
            self.num_swaps,
            self.added_gates(),
            self.depth()
        )
    }
}

/// What one traversal of one restart produced (for reporting `g_la` vs
/// `g_op`-style numbers and the scalability study).
#[derive(Clone, Debug, PartialEq)]
pub struct TraversalReport {
    /// Restart index (0-based).
    pub restart: usize,
    /// Traversal index within the restart (0 = first forward pass).
    pub traversal: usize,
    /// Whether this traversal ran the reversed circuit.
    pub reversed: bool,
    /// SWAPs inserted during this traversal.
    pub num_swaps: usize,
}

/// Complete result of [`SabreRouter::route`]: the best routed circuit over
/// all restarts plus per-traversal telemetry.
///
/// [`SabreRouter::route`]: crate::SabreRouter::route
#[derive(Clone, Debug)]
pub struct SabreResult {
    /// The best routing found (fewest added gates, ties broken by depth).
    pub best: RoutedCircuit,
    /// Which restart produced `best` — or, when [`Self::perfect_placement`]
    /// is `true`, the best restart the embedding probe beat.
    pub best_restart: usize,
    /// `best` came from the zero-SWAP perfect-placement probe
    /// ([`crate::SabreConfig::embedding_probe_budget`]) rather than from a
    /// random restart.
    pub perfect_placement: bool,
    /// SWAP counts for every traversal of every restart.
    pub traversals: Vec<TraversalReport>,
    /// `g_la`-style metric: added gates of the best *first* traversal
    /// (look-ahead heuristic with a random initial mapping, before any
    /// reverse-traversal improvement).
    pub first_traversal_added_gates: usize,
    /// Wall-clock time of the whole routing call.
    pub elapsed: Duration,
}

impl SabreResult {
    /// Added gates of the final result (`g_op` when run with the paper's
    /// 3-traversal configuration).
    pub fn added_gates(&self) -> usize {
        self.best.added_gates()
    }
}

impl fmt::Display for SabreResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (best of {} restarts, {:.3}s)",
            self.best,
            self.traversals
                .iter()
                .map(|t| t.restart)
                .max()
                .map_or(1, |m| m + 1),
            self.elapsed.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_circuit::Qubit;

    fn sample_routed() -> RoutedCircuit {
        let mut physical = Circuit::with_name(3, "t");
        physical.cx(Qubit(0), Qubit(1));
        physical.swap(Qubit(1), Qubit(2));
        physical.cx(Qubit(0), Qubit(1));
        RoutedCircuit {
            physical,
            initial_layout: Layout::identity(3),
            final_layout: {
                let mut l = Layout::identity(3);
                l.swap_physical(Qubit(1), Qubit(2));
                l
            },
            num_swaps: 1,
            search_steps: 1,
            forced_routings: 0,
        }
    }

    #[test]
    fn added_gates_is_three_per_swap() {
        assert_eq!(sample_routed().added_gates(), 3);
    }

    #[test]
    fn total_gates_counts_decomposed_swaps() {
        let r = sample_routed();
        assert_eq!(r.total_gates(), 2 + 3);
        assert_eq!(r.decomposed().num_gates(), r.total_gates());
        assert_eq!(r.decomposed().num_swaps(), 0);
    }

    #[test]
    fn depth_uses_decomposed_form() {
        let r = sample_routed();
        // cx(0,1); [cx(1,2) cx(2,1) cx(1,2)]; cx(0,1) → depth 5 on wires.
        assert_eq!(r.depth(), 5);
    }

    #[test]
    fn display_summarizes() {
        let text = sample_routed().to_string();
        assert!(text.contains("1 swaps"));
        assert!(text.contains("+3 gates"));
    }
}
