//! Plan-quality reports — the paper's Table-II metrics as a first-class
//! value.
//!
//! The evaluation of Li, Ding & Xie judges a router by **additional gate
//! count** and **depth overhead**; Niu et al.'s follow-up work scores the
//! same plans by **estimated success probability** under per-edge
//! calibration data. [`PlanQuality`] packages all three for any finished
//! routing artifact, so the serving layer, the bench harness, and the CI
//! regression gate all report the same numbers from the same code:
//!
//! - inserted SWAP count and the paper's `3 × swaps` added-gate
//!   accounting,
//! - input vs output two-qubit gate count (output in the decomposed
//!   elementary-gate form Table II reports),
//! - circuit depth overhead, via the existing DAG layering
//!   ([`Circuit::depth`]),
//! - estimated **log**-success-probability under the device's
//!   [`NoiseModel`]: `Σ log(1−err)` over the routed gates (SWAPs count
//!   as three two-qubit gates, matching
//!   [`NoiseModel::success_probability`]). Hop-only devices (no noise
//!   model) report the gate counts and skip the fidelity estimate.
//!
//! The report is `Copy`, heap-free, and deterministic: for a fixed seed
//! the router's output is bit-identical across machines and thread
//! counts, so every field — including the log-fidelity float — is too.
//! [`PlanQuality::to_json`] is therefore safe to diff byte-for-byte,
//! which is exactly what the plan-cache tests and the `quality_json`
//! regression gate do.

use sabre_circuit::Circuit;
use sabre_json::JsonValue;
use sabre_topology::noise::NoiseModel;

use crate::transpile::TranspileOutput;
use crate::{RoutedCircuit, SabreResult};

/// Quality report of one routed circuit: swap/gate/depth overheads plus
/// the optional noise-model fidelity estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanQuality {
    /// SWAP gates the router inserted.
    pub num_swaps: usize,
    /// The paper's added-gate accounting: `3 × num_swaps`.
    pub added_gates: usize,
    /// Two-qubit gates of the **input** circuit (SWAPs in the input
    /// count once — they are single gates until decomposition).
    pub input_two_qubit_gates: usize,
    /// Two-qubit gates of the **output** in elementary form (each
    /// remaining SWAP counted as its three CNOTs).
    pub output_two_qubit_gates: usize,
    /// Depth of the input circuit (DAG layering on logical wires).
    pub input_depth: usize,
    /// Depth of the decomposed output circuit (`d` of Table II).
    pub output_depth: usize,
    /// `output_depth − input_depth`, saturating at zero (an optimizer
    /// pass can legitimately shrink a circuit below its input depth).
    pub depth_overhead: usize,
    /// `Σ log(1−err)` over the output gates under the device's noise
    /// model, or `None` on a hop-only device. Always ≤ 0; `exp` of it is
    /// the success probability [`NoiseModel::success_probability`]
    /// reports, kept in the log domain so deep circuits stay finite and
    /// per-device aggregates can sum.
    pub log_success_probability: Option<f64>,
}

impl PlanQuality {
    /// Quality of a [`RoutedCircuit`] against the logical circuit it was
    /// routed from.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is given and the routed circuit applies a
    /// two-qubit gate on an uncoupled pair — score only verified
    /// routings against the device they were routed for.
    pub fn of_routed(input: &Circuit, routed: &RoutedCircuit, noise: Option<&NoiseModel>) -> Self {
        PlanQuality::from_parts(input, &routed.decomposed(), routed.num_swaps, noise)
    }

    /// Quality of a full [`SabreResult`] (its best routing).
    ///
    /// # Panics
    ///
    /// As [`PlanQuality::of_routed`].
    pub fn of_result(input: &Circuit, result: &SabreResult, noise: Option<&NoiseModel>) -> Self {
        PlanQuality::of_routed(input, &result.best, noise)
    }

    /// Quality of a [`TranspileOutput`] — the batch pipeline's artifact,
    /// already decomposed and peephole-optimized (so `added_gates` may
    /// overstate the net growth; the gate counts report the actuals).
    ///
    /// # Panics
    ///
    /// As [`PlanQuality::of_routed`].
    pub fn of_transpiled(
        input: &Circuit,
        output: &TranspileOutput,
        noise: Option<&NoiseModel>,
    ) -> Self {
        PlanQuality::from_parts(input, &output.circuit, output.swaps_inserted, noise)
    }

    /// The shared constructor: `output` is the hardware circuit as
    /// served. Any SWAP gate still explicit in it is priced as its three
    /// CNOTs, so callers may pass either form.
    fn from_parts(
        input: &Circuit,
        output: &Circuit,
        num_swaps: usize,
        noise: Option<&NoiseModel>,
    ) -> Self {
        let input_depth = input.depth();
        let output_depth = if output.num_swaps() > 0 {
            output.with_swaps_decomposed().depth()
        } else {
            output.depth()
        };
        PlanQuality {
            num_swaps,
            added_gates: 3 * num_swaps,
            input_two_qubit_gates: input.num_two_qubit_gates(),
            output_two_qubit_gates: output.num_two_qubit_gates() + 2 * output.num_swaps(),
            input_depth,
            output_depth,
            depth_overhead: output_depth.saturating_sub(input_depth),
            log_success_probability: noise.map(|model| log_success(output, model)),
        }
    }

    /// The report as a deterministic JSON object — the `"quality"`
    /// payload of every `/route` response. `log_success_probability` is
    /// `null` on hop-only devices.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("num_swaps", self.num_swaps.into()),
            ("added_gates", self.added_gates.into()),
            ("input_two_qubit_gates", self.input_two_qubit_gates.into()),
            ("output_two_qubit_gates", self.output_two_qubit_gates.into()),
            ("input_depth", self.input_depth.into()),
            ("output_depth", self.output_depth.into()),
            ("depth_overhead", self.depth_overhead.into()),
            (
                "log_success_probability",
                match self.log_success_probability {
                    Some(lsp) => lsp.into(),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// `Σ log(1−err)` over `circuit`'s gates — the log-domain form of
/// [`NoiseModel::success_probability`] (same per-gate factors: single-
/// qubit average for 1q gates, the per-edge rate for 2q gates, tripled
/// for an explicit SWAP).
fn log_success(circuit: &Circuit, noise: &NoiseModel) -> f64 {
    let mut log_fidelity = 0.0f64;
    for gate in circuit {
        match gate.qubits() {
            (_, None) => log_fidelity += (1.0 - noise.single_qubit_error()).ln(),
            (a, Some(b)) => {
                let factor = if gate.is_swap() { 3.0 } else { 1.0 };
                log_fidelity += factor * (1.0 - noise.edge_error(a, b)).ln();
            }
        }
    }
    log_fidelity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;
    use sabre_circuit::Qubit;
    use sabre_topology::devices;

    /// `cx(0,1); swap(1,2); cx(0,1)` on 3 wires: 1 inserted SWAP, the
    /// fixture [`crate::result`]'s tests also pin (decomposed depth 5).
    fn fixture() -> (Circuit, RoutedCircuit) {
        let mut input = Circuit::with_name(3, "t");
        input.cx(Qubit(0), Qubit(1));
        input.cx(Qubit(0), Qubit(2));
        let mut physical = Circuit::with_name(3, "t");
        physical.cx(Qubit(0), Qubit(1));
        physical.swap(Qubit(1), Qubit(2));
        physical.cx(Qubit(0), Qubit(1));
        let routed = RoutedCircuit {
            physical,
            initial_layout: Layout::identity(3),
            final_layout: {
                let mut l = Layout::identity(3);
                l.swap_physical(Qubit(1), Qubit(2));
                l
            },
            num_swaps: 1,
            search_steps: 1,
            forced_routings: 0,
        };
        (input, routed)
    }

    #[test]
    fn counts_and_depths_match_hand_computation() {
        let (input, routed) = fixture();
        let q = PlanQuality::of_routed(&input, &routed, None);
        assert_eq!(q.num_swaps, 1);
        assert_eq!(q.added_gates, 3);
        assert_eq!(q.input_two_qubit_gates, 2);
        assert_eq!(q.output_two_qubit_gates, 5, "2 CX + 3 from the SWAP");
        assert_eq!(q.input_depth, 2);
        assert_eq!(q.output_depth, 5);
        assert_eq!(q.depth_overhead, 3);
        assert_eq!(q.log_success_probability, None, "hop-only device");
    }

    #[test]
    fn log_success_matches_the_noise_model_product() {
        let (input, routed) = fixture();
        let device = devices::linear(3);
        let noise = NoiseModel::uniform(device.graph(), 0.1, 0.01);
        let q = PlanQuality::of_routed(&input, &routed, Some(&noise));
        // Five elementary 2q gates at ε = 0.1: log(0.9) each.
        let expected = 5.0 * (0.9f64).ln();
        let lsp = q.log_success_probability.expect("noise model given");
        assert!((lsp - expected).abs() < 1e-12, "{lsp} vs {expected}");
        // And exp(lsp) agrees with the model's own product form.
        let direct = noise.success_probability(&routed.physical);
        assert!((lsp.exp() - direct).abs() < 1e-12);
    }

    #[test]
    fn depth_overhead_saturates_when_output_is_shallower() {
        let mut input = Circuit::new(2);
        input.cx(Qubit(0), Qubit(1));
        input.cx(Qubit(0), Qubit(1));
        input.cx(Qubit(0), Qubit(1));
        let routed = RoutedCircuit {
            physical: {
                let mut c = Circuit::new(2);
                c.cx(Qubit(0), Qubit(1));
                c
            },
            initial_layout: Layout::identity(2),
            final_layout: Layout::identity(2),
            num_swaps: 0,
            search_steps: 0,
            forced_routings: 0,
        };
        let q = PlanQuality::of_routed(&input, &routed, None);
        assert_eq!(q.depth_overhead, 0);
        assert_eq!((q.input_depth, q.output_depth), (3, 1));
    }

    #[test]
    fn to_json_is_deterministic_and_round_trips() {
        let (input, routed) = fixture();
        let device = devices::linear(3);
        let noise = NoiseModel::uniform(device.graph(), 0.1, 0.01);
        let q = PlanQuality::of_routed(&input, &routed, Some(&noise));
        let json = q.to_json();
        assert_eq!(json.get("num_swaps").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("depth_overhead").unwrap().as_usize(), Some(3));
        assert!(json
            .get("log_success_probability")
            .unwrap()
            .as_f64()
            .is_some());
        let text = json.to_compact();
        assert_eq!(JsonValue::parse(&text).unwrap(), json);
        // Byte-identical across recomputations: the regression gate's
        // working assumption.
        let again = PlanQuality::of_routed(&input, &routed, Some(&noise));
        assert_eq!(again.to_json().to_compact(), text);
        // Hop-only: the fidelity field is null, not absent.
        let hop = PlanQuality::of_routed(&input, &routed, None);
        assert!(matches!(
            hop.to_json().get("log_success_probability"),
            Some(JsonValue::Null)
        ));
    }
}
