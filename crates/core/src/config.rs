use std::fmt;

/// Which heuristic cost function guides the SWAP search.
///
/// The variants correspond to the evolution in paper §IV-D and power the
/// ablation benches: `Basic` is Equation 1, `LookAhead` adds the extended
/// set term, `Decay` (the full SABRE heuristic) is Equation 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// Equation 1: sum of front-layer distances, nothing else.
    Basic,
    /// Normalized front-layer term plus weighted extended-set look-ahead.
    LookAhead,
    /// Full Equation 2: look-ahead scaled by the per-qubit decay factor.
    #[default]
    Decay,
}

/// Tunable parameters of the SABRE search.
///
/// Defaults reproduce the paper's evaluation configuration (§V "Algorithm
/// Configuration"): `|E| = 20`, `W = 0.5`, `δ = 0.001` with a reset every 5
/// search steps, 5 random restarts, 3 traversals each.
///
/// # Example
///
/// ```
/// use sabre::SabreConfig;
///
/// let config = SabreConfig {
///     decay_delta: 0.01, // push harder toward parallel SWAPs
///     ..SabreConfig::default()
/// };
/// assert_eq!(config.extended_set_size, 20);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SabreConfig {
    /// Heuristic variant (ablation knob; the paper uses [`HeuristicKind::Decay`]).
    pub heuristic: HeuristicKind,
    /// `|E|`: how many successor two-qubit gates feed the look-ahead term.
    pub extended_set_size: usize,
    /// `W ∈ [0, 1)`: weight of the extended-set term relative to the front
    /// layer.
    pub extended_set_weight: f64,
    /// `δ`: decay added to a qubit each time it participates in a selected
    /// SWAP. `0.0` disables the decay effect entirely.
    pub decay_delta: f64,
    /// Reset all decay values after this many consecutive SWAP selections
    /// (the paper resets "every 5 search steps or after a CNOT gate is
    /// executed").
    pub decay_reset_interval: u32,
    /// Number of independent random initial mappings tried; the best final
    /// result is reported (paper: 5).
    pub num_restarts: usize,
    /// Traversals per restart: 1 = single forward pass, 3 = the paper's
    /// forward–backward–forward reverse-traversal scheme. Must be odd so
    /// the final pass runs the original circuit.
    pub num_traversals: usize,
    /// Seed for all randomness (initial mappings and tie-breaking); results
    /// are fully reproducible given the seed.
    pub seed: u64,
    /// Livelock guard: after `3·N + livelock_slack` consecutive SWAPs with
    /// no gate executed, force-route the oldest front gate via a shortest
    /// path. Never triggers on the paper's configuration (the stats report
    /// it so tests can assert that).
    pub livelock_slack: usize,
    /// Node budget for the perfect-placement probe: before reporting, the
    /// router spends at most this many backtracking steps searching for a
    /// zero-SWAP embedding of the circuit's interaction graph
    /// ([`sabre_topology::embedding`]) and uses it if found — realizing the
    /// paper's §V-A1 observation that small benchmarks often admit a
    /// perfect initial mapping, deterministically instead of by restart
    /// luck. `0` disables the probe (pure multi-restart SABRE).
    pub embedding_probe_budget: usize,
    /// Collect a [`RouteProfile`](crate::RouteProfile) while routing:
    /// per-phase hot-loop wall times (front maintenance, extended-set
    /// BFS, candidate scoring), candidate counts, decay resets, forced
    /// routings, and per-traversal step counts, returned as
    /// [`SabreResult::profile`](crate::SabreResult::profile).
    ///
    /// **Observability-only knob**: the routed output is bit-identical
    /// with the flag on or off (the collector only reads the monotonic
    /// clock — `tests/hot_loop_equivalence.rs` interleaves both against
    /// `sabre::reference`), and like the search-effort knobs it is
    /// excluded from plan-cache keying ([`crate::plan`]). Off by
    /// default; the disabled path costs one predictable branch per
    /// phase boundary and never reads the clock.
    pub profile: bool,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            heuristic: HeuristicKind::Decay,
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_delta: 0.001,
            decay_reset_interval: 5,
            num_restarts: 5,
            num_traversals: 3,
            seed: 2019, // the paper's publication year; any value works
            livelock_slack: 10,
            embedding_probe_budget: 50_000,
            profile: false,
        }
    }
}

impl SabreConfig {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        SabreConfig::default()
    }

    /// A fast configuration for tests: single restart, single traversal.
    pub fn fast() -> Self {
        SabreConfig {
            num_restarts: 1,
            num_traversals: 1,
            ..SabreConfig::default()
        }
    }

    /// Configuration for the ablation without look-ahead or decay
    /// (Equation 1 only).
    pub fn basic() -> Self {
        SabreConfig {
            heuristic: HeuristicKind::Basic,
            ..SabreConfig::default()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.extended_set_weight) {
            return Err(format!(
                "extended_set_weight must lie in [0, 1), got {}",
                self.extended_set_weight
            ));
        }
        if self.decay_delta < 0.0 {
            return Err(format!("decay_delta must be ≥ 0, got {}", self.decay_delta));
        }
        if self.num_restarts == 0 {
            return Err("num_restarts must be ≥ 1".into());
        }
        if self.num_traversals == 0 || self.num_traversals.is_multiple_of(2) {
            return Err(format!(
                "num_traversals must be odd (final pass routes the forward circuit), got {}",
                self.num_traversals
            ));
        }
        if self.decay_reset_interval == 0 {
            return Err("decay_reset_interval must be ≥ 1".into());
        }
        Ok(())
    }
}

impl fmt::Display for SabreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sabre(heuristic={:?}, |E|={}, W={}, δ={}, reset={}, restarts={}, traversals={}, seed={})",
            self.heuristic,
            self.extended_set_size,
            self.extended_set_weight,
            self.decay_delta,
            self.decay_reset_interval,
            self.num_restarts,
            self.num_traversals,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let c = SabreConfig::default();
        assert_eq!(c.extended_set_size, 20);
        assert_eq!(c.extended_set_weight, 0.5);
        assert_eq!(c.decay_delta, 0.001);
        assert_eq!(c.decay_reset_interval, 5);
        assert_eq!(c.num_restarts, 5);
        assert_eq!(c.num_traversals, 3);
        assert_eq!(c.heuristic, HeuristicKind::Decay);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_weight() {
        let c = SabreConfig {
            extended_set_weight: 1.5,
            ..SabreConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("extended_set_weight"));
    }

    #[test]
    fn validation_rejects_even_traversals() {
        let c = SabreConfig {
            num_traversals: 2,
            ..SabreConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("odd"));
    }

    #[test]
    fn validation_rejects_zero_restarts() {
        let c = SabreConfig {
            num_restarts: 0,
            ..SabreConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_negative_delta() {
        let c = SabreConfig {
            decay_delta: -0.1,
            ..SabreConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn fast_config_is_valid() {
        assert!(SabreConfig::fast().validate().is_ok());
        assert_eq!(SabreConfig::fast().num_traversals, 1);
    }

    #[test]
    fn display_mentions_key_fields() {
        let text = SabreConfig::default().to_string();
        assert!(text.contains("|E|=20"));
        assert!(text.contains("W=0.5"));
    }
}
