//! Integration test: the paper's §V-A1 claim that SABRE finds the optimal
//! (zero-SWAP) solution for the Ising-model benchmarks on IBM Q20 Tokyo.

use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::ising;
use sabre_topology::devices;

#[test]
fn ising_chains_route_with_zero_swaps_on_tokyo() {
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::default()).unwrap();
    for n in [10u32, 13, 16] {
        let circuit = ising::ising_chain(n, 13);
        let result = router.route(&circuit).unwrap();
        assert_eq!(
            result.added_gates(),
            0,
            "ising_model_{n}: paper reports g_op = 0"
        );
    }
}
