//! Workspace umbrella crate for the SABRE qubit-mapping reproduction.
//!
//! This crate re-exports the public surface of every member crate so that
//! the root-level integration tests and examples can exercise the whole
//! system through one dependency. Library users should depend on the
//! individual crates ([`sabre`], [`sabre_circuit`], ...) directly.

pub use sabre;
pub use sabre_baseline;
pub use sabre_benchgen;
pub use sabre_circuit;
pub use sabre_json;
pub use sabre_qasm;
pub use sabre_serve;
pub use sabre_shard;
pub use sabre_sim;
pub use sabre_topology;
pub use sabre_trace;
pub use sabre_verify;
