//! `sabre-serve` — run the SABRE routing service as a process.
//!
//! ```text
//! sabre-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!             [--retry-after SECS] [--max-body-bytes N] [--preload]
//!             [--max-connections N] [--rate-limit PER_SEC] [--rate-limit-burst N]
//!             [--admission-slo-ms MS] [--read-deadline-ms MS]
//!             [--write-deadline-ms MS] [--idle-timeout-ms MS]
//!             [--plan-cache-capacity N] [--trace-capacity N]
//!             [--log-format text|json] [--slow-request-ms MS]
//! ```
//!
//! `--preload` registers the fixed builtin devices (`tokyo20`, `qx5`,
//! `qx2`, `falcon27`) at boot so a fresh instance can serve `POST /route`
//! immediately — otherwise register devices via `POST /devices`.
//!
//! The process serves until killed; embed `sabre_serve::start` directly
//! when you need programmatic graceful shutdown
//! (`ServerHandle::shutdown` drains in-flight jobs).

use std::process::exit;

use sabre_serve::{api, start, ServeConfig};

const PRELOADED: [&str; 4] = ["tokyo20", "qx5", "qx2", "falcon27"];

fn usage() -> ! {
    eprintln!(
        "usage: sabre-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]\n\
         \x20                  [--retry-after SECS] [--max-body-bytes N] [--preload]\n\
         \x20                  [--max-connections N] [--rate-limit PER_SEC]\n\
         \x20                  [--rate-limit-burst N] [--admission-slo-ms MS]\n\
         \x20                  [--read-deadline-ms MS] [--write-deadline-ms MS]\n\
         \x20                  [--idle-timeout-ms MS] [--plan-cache-capacity N]\n\
         \x20                  [--trace-capacity N] [--log-format text|json]\n\
         \x20                  [--slow-request-ms MS]"
    );
    exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let mut preload = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--queue-capacity" => {
                config.queue_capacity = parse(&value("--queue-capacity"), "--queue-capacity");
            }
            "--retry-after" => {
                config.retry_after_secs = parse(&value("--retry-after"), "--retry-after");
            }
            "--max-body-bytes" => {
                config.max_body_bytes = parse(&value("--max-body-bytes"), "--max-body-bytes");
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections"), "--max-connections");
            }
            "--rate-limit" => {
                config.rate_limit_per_sec = parse(&value("--rate-limit"), "--rate-limit");
            }
            "--rate-limit-burst" => {
                config.rate_limit_burst = parse(&value("--rate-limit-burst"), "--rate-limit-burst");
            }
            "--admission-slo-ms" => {
                config.admission_slo_ms = parse(&value("--admission-slo-ms"), "--admission-slo-ms");
            }
            "--read-deadline-ms" => {
                config.read_deadline_ms = parse(&value("--read-deadline-ms"), "--read-deadline-ms");
            }
            "--write-deadline-ms" => {
                config.write_deadline_ms =
                    parse(&value("--write-deadline-ms"), "--write-deadline-ms");
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = parse(&value("--idle-timeout-ms"), "--idle-timeout-ms");
            }
            "--plan-cache-capacity" => {
                config.plan_cache_capacity =
                    parse(&value("--plan-cache-capacity"), "--plan-cache-capacity");
            }
            "--trace-capacity" => {
                config.trace_capacity = parse(&value("--trace-capacity"), "--trace-capacity");
            }
            "--log-format" => {
                config.log_format = parse(&value("--log-format"), "--log-format");
            }
            "--slow-request-ms" => {
                config.slow_request_ms = parse(&value("--slow-request-ms"), "--slow-request-ms");
            }
            "--preload" => preload = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("sabre-serve: {e}");
            exit(1);
        }
    };
    if preload {
        for name in PRELOADED {
            let device = api::builtin_device(name).expect("preload names are builtin");
            match handle.register_device(name, device.graph()) {
                Ok(()) => eprintln!("sabre-serve: preloaded device `{name}`"),
                Err(e) => {
                    eprintln!("sabre-serve: preloading `{name}` failed: {e}");
                    exit(1);
                }
            }
        }
    }
    // The smoke scripts in CI wait for this exact line.
    println!("sabre-serve listening on http://{}", handle.addr());
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{text}`");
        exit(2);
    })
}
