//! Defense in depth: verify a routed circuit three ways.
//!
//! 1. hardware compliance (every CNOT on a coupled pair),
//! 2. permutation replay against the original dependency DAG,
//! 3. full state-vector equivalence (small registers only).
//!
//! ```text
//! cargo run --release --example verified_routing
//! ```

use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::random;
use sabre_topology::devices;
use sabre_verify::{check_compliance, verify_routed, verify_semantics_small};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An adversarial workload: dense random two-qubit traffic on a sparse
    // line, so plenty of SWAPs are needed.
    let device = devices::linear(8);
    let circuit = random::random_circuit(8, 120, 0.7, 42);

    let router = SabreRouter::new(device.graph().clone(), SabreConfig::default())?;
    let result = router.route(&circuit)?;
    let routed = &result.best;
    println!(
        "routed {} gates with {} SWAPs on {}",
        circuit.num_gates(),
        routed.num_swaps,
        device.name()
    );

    check_compliance(&routed.physical, device.graph())?;
    println!("✓ hardware compliance");

    let report = verify_routed(
        &circuit,
        &routed.physical,
        routed.initial_layout.logical_to_physical(),
        routed.final_layout.logical_to_physical(),
        device.graph(),
    )?;
    println!(
        "✓ permutation replay ({} gates, {} SWAPs re-enacted)",
        report.gates_replayed, report.swaps_replayed
    );

    verify_semantics_small(
        &circuit,
        &routed.physical,
        routed.initial_layout.logical_to_physical(),
        routed.final_layout.logical_to_physical(),
    )?;
    println!("✓ state-vector equivalence (2^8 basis states, global phase aware)");

    println!("\nall three checks passed — the routed circuit is provably faithful");
    Ok(())
}
