//! The whole stack in one call: transpile a QAOA workload for the
//! historical directed-CNOT IBM QX5, with routing, SWAP decomposition,
//! peephole optimization, and direction fixing.
//!
//! ```text
//! cargo run --release --example full_pipeline
//! ```

use sabre::{transpile, TranspileOptions};
use sabre_benchgen::algorithms;
use sabre_topology::devices;
use sabre_topology::direction::{ibm_qx5_directions, DirectionModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A QAOA MaxCut ansatz on a random 12-node graph, 2 layers.
    let circuit = algorithms::qaoa_maxcut(12, 0.35, 2, 42);
    println!(
        "input: {} ({} gates, {} CNOTs, depth {})",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_two_qubit_gates(),
        circuit.depth()
    );

    // Target: IBM QX5 with its published one-way CNOT orientations.
    let device = devices::ibm_qx5();
    let options = TranspileOptions {
        direction: Some(DirectionModel::one_way(
            device.graph(),
            &ibm_qx5_directions(),
        )),
        ..TranspileOptions::default()
    };
    let out = transpile(&circuit, device.graph(), &options)?;

    println!("\npipeline report:");
    println!("  SWAPs inserted by routing:   {}", out.swaps_inserted);
    println!("  gates removed by optimizer:  {}", out.gates_removed);
    println!("  CNOTs flipped for direction: {}", out.cnots_flipped);
    println!(
        "\noutput: {} gates (overhead {:+}), depth {}, initial mapping {}",
        out.circuit.num_gates(),
        out.overhead(&circuit),
        out.circuit.depth(),
        out.initial_layout
    );

    // The output is native QX5 hardware code: emit it as OpenQASM.
    let qasm = sabre_qasm::to_qasm(&out.circuit);
    println!("\nfirst lines of the hardware OpenQASM:");
    for line in qasm.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
