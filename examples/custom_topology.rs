//! Bring your own device and your own OpenQASM program.
//!
//! SABRE's flexibility objective (paper §III-B) is that it works on
//! *arbitrary* symmetric coupling graphs: here we define a fictional
//! 7-qubit "H"-shaped chip, parse a circuit from QASM text, route it, and
//! emit hardware-compliant QASM back out.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use sabre::{SabreConfig, SabreRouter};
use sabre_qasm::{parse, to_qasm};
use sabre_topology::CouplingGraph;
use sabre_verify::verify_routed;

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
h q[0];
cx q[0], q[5];
cx q[1], q[4];
rz(pi/8) q[4];
cx q[0], q[3];
cx q[2], q[5];
cx q[4], q[5];
h q[3];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An "H"-shaped 7-qubit chip:
    //
    //   0       4
    //   |       |
    //   1 - 3 - 5
    //   |       |
    //   2       6
    let chip = CouplingGraph::from_edges(7, [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)])?;

    let circuit = parse(PROGRAM)?;
    println!(
        "parsed {} gates over {} logical qubits",
        circuit.num_gates(),
        circuit.num_qubits()
    );

    let router = SabreRouter::new(chip.clone(), SabreConfig::default())?;
    let result = router.route(&circuit)?;
    verify_routed(
        &circuit,
        &result.best.physical,
        result.best.initial_layout.logical_to_physical(),
        result.best.final_layout.logical_to_physical(),
        &chip,
    )?;

    println!(
        "routed with {} SWAPs; every CNOT now acts on a coupled pair",
        result.best.num_swaps
    );
    println!("\nhardware-compliant OpenQASM:\n");
    // Decompose SWAPs into CNOTs so the output uses the elementary set.
    print!("{}", to_qasm(&result.best.decomposed()));
    Ok(())
}
