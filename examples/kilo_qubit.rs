//! Kilo-qubit routing at flat memory: the sparse distance engine.
//!
//! Devices past [`sabre_topology::DENSE_DISTANCE_THRESHOLD`] qubits skip
//! the dense all-pairs matrices entirely — preprocessing keeps only the
//! CSR graph, a bounded LRU of BFS/Dijkstra rows, and a handful of
//! landmark rows. This example routes a deep circuit on a 1089-qubit
//! grid (33×33) and then preprocesses a 10 000-qubit grid, printing the
//! resident row counts so you can see memory stay flat. CI runs it under
//! a hard address-space ceiling (`ulimit -v`) that the dense `O(N²)`
//! matrices could not fit — at 10⁴ qubits, dense weighted distances
//! alone would need ~800 MB.
//!
//! ```text
//! cargo run --release --example kilo_qubit
//! ```

use std::time::Instant;

use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::random;
use sabre_topology::{devices, WeightedDistanceMatrix, ROW_CACHE_CAPACITY};
use sabre_verify::verify_routed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 33×33 grid: 1089 physical qubits, auto policy → sparse engine.
    let device = devices::grid(33, 33);
    let graph = device.graph().clone();

    let start = Instant::now();
    let router = SabreRouter::new(graph.clone(), SabreConfig::fast())?;
    println!(
        "grid33x33: {} qubits, preprocessing {:?} (sparse: {})",
        graph.num_qubits(),
        start.elapsed(),
        router.distance_matrix().is_sparse(),
    );

    // A deep circuit: 4000 gates over 200 logical qubits. Depth is what
    // stresses routing; the device's spare width is what the sparse
    // engine makes affordable.
    let circuit = random::random_circuit(200, 4000, 0.9, 7);
    let start = Instant::now();
    let result = router.route(&circuit)?;
    println!(
        "routed {} gates in {:?}: {} SWAPs added",
        circuit.num_gates(),
        start.elapsed(),
        result.best.num_swaps,
    );
    verify_routed(
        &circuit,
        &result.best.physical,
        result.best.initial_layout.logical_to_physical(),
        result.best.final_layout.logical_to_physical(),
        &graph,
    )?;
    println!("verified: every two-qubit gate lands on a coupled pair");

    // 100×100 grid: 10 000 qubits. Dense preprocessing would allocate
    // 10⁸ entries per matrix; the sparse engine holds O(N + E) plus a
    // bounded row cache, so construction is instant and memory is flat.
    let huge = devices::grid(100, 100).graph().clone();
    let start = Instant::now();
    let dist = WeightedDistanceMatrix::auto(&huge, |_, _| 1.0);
    println!(
        "grid100x100: {} qubits, preprocessing {:?} (sparse: {})",
        huge.num_qubits(),
        start.elapsed(),
        dist.is_sparse(),
    );
    // Touch more rows than the cache holds: residency stays at the cap.
    for q in (0..huge.num_qubits()).step_by(7) {
        let _ = dist.row(sabre_topology::Qubit(q));
    }
    println!(
        "after {} row loads: {} rows resident (cap {})",
        huge.num_qubits() / 7 + 1,
        dist.cached_rows(),
        ROW_CACHE_CAPACITY,
    );
    Ok(())
}
