//! Noise-aware routing (the paper's §VI future-work direction): give the
//! router a per-coupling error model and it steers SWAPs through reliable
//! couplers.
//!
//! ```text
//! cargo run --release --example noise_aware
//! ```

use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::toffoli::{toffoli_network, NetworkConfig};
use sabre_topology::devices;
use sabre_topology::noise::NoiseModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = devices::ibm_q20_tokyo();
    let graph = device.graph();

    // Calibration-like variability: each coupling's CNOT error drawn
    // log-uniformly within ×4 of the Figure 2 average (3e-2).
    let noise = NoiseModel::calibrated(graph, 0.03, 4.0, 7);

    // A deep arithmetic workload where coupler quality compounds.
    let circuit = toffoli_network(NetworkConfig::arithmetic(12, 120), 11);
    println!(
        "workload: {} gates on {} logical qubits\n",
        circuit.num_gates(),
        circuit.num_qubits()
    );

    let hop = SabreRouter::new(graph.clone(), SabreConfig::default())?.route(&circuit)?;
    let fid =
        SabreRouter::with_noise(graph.clone(), SabreConfig::default(), &noise)?.route(&circuit)?;

    let hop_success = noise.success_probability(&hop.best.decomposed());
    let fid_success = noise.success_probability(&fid.best.decomposed());

    println!(
        "{:<22} {:>12} {:>16}",
        "heuristic", "added gates", "est. success"
    );
    println!(
        "{:<22} {:>12} {:>16.3e}",
        "hop distance (paper)",
        hop.added_gates(),
        hop_success
    );
    println!(
        "{:<22} {:>12} {:>16.3e}",
        "fidelity-weighted",
        fid.added_gates(),
        fid_success
    );
    println!(
        "\nfidelity-weighted routing changes estimated success by {:.1}x",
        fid_success / hop_success.max(f64::MIN_POSITIVE)
    );
    Ok(())
}
