//! Quickstart: route a small logical circuit onto IBM Q20 Tokyo.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sabre::{SabreConfig, SabreRouter};
use sabre_circuit::{Circuit, Qubit};
use sabre_topology::devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The motivating example of the paper's Figure 3: six CNOTs on four
    // logical qubits.
    let (q1, q2, q3, q4) = (Qubit(0), Qubit(1), Qubit(2), Qubit(3));
    let mut circuit = Circuit::with_name(4, "figure3");
    circuit.cx(q1, q2);
    circuit.cx(q3, q4);
    circuit.cx(q2, q4);
    circuit.cx(q2, q3);
    circuit.cx(q3, q4);
    circuit.cx(q1, q4);

    println!("logical circuit:\n{circuit}");

    // Build the router once per device; route as many circuits as needed.
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::default())?;
    let result = router.route(&circuit)?;

    println!("initial mapping: {}", result.best.initial_layout);
    println!("final mapping:   {}", result.best.final_layout);
    println!(
        "inserted {} SWAPs (+{} gates); output depth {}",
        result.best.num_swaps,
        result.added_gates(),
        result.best.depth()
    );
    println!("\nhardware circuit:\n{}", result.best.physical);

    // The device graph is dense enough that this tiny circuit embeds
    // perfectly: SABRE should find a zero-SWAP placement.
    assert_eq!(result.added_gates(), 0, "perfect initial mapping exists");
    Ok(())
}
