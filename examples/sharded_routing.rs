//! Multi-device sharded routing end to end: a circuit wider than any
//! single chip is partitioned across a fleet, routed per shard in
//! parallel, stitched into a verified plan, and printed as JSON.
//!
//! ```text
//! cargo run --release --example sharded_routing [QASM_DIR]
//! ```
//!
//! With a directory argument, every `.qasm` file in it (loaded in
//! deterministic sorted order via `sabre_qasm::load_dir`) is routed
//! against the fleet too. Output is deterministic: `RAYON_NUM_THREADS=1`
//! and `=8` print identical bytes — CI diffs exactly that.

use sabre::{DeviceCache, SabreConfig};
use sabre_benchgen::random;
use sabre_shard::{route_sharded, Fleet, ShardConfig};
use sabre_topology::devices;
use sabre_topology::noise::NoiseModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The fleet: two real 20-qubit chips and one noisy 4x5 grid. No
    // single member can hold more than 20 logical qubits.
    let tokyo = devices::ibm_q20_tokyo().graph().clone();
    let grid = devices::grid(4, 5).graph().clone();
    let mut fleet = Fleet::new();
    fleet.register("tokyo-a", tokyo.clone())?;
    fleet.register("tokyo-b", tokyo)?;
    fleet.register_with_noise(
        "grid-noisy",
        grid.clone(),
        NoiseModel::calibrated(&grid, 0.02, 4.0, 1),
    )?;
    println!(
        "fleet: {} devices, {} qubits total, widest chip {}",
        fleet.len(),
        fleet.total_qubits(),
        fleet.max_member_qubits()
    );
    for member in fleet.members() {
        println!(
            "  {:<12} {:>2} qubits, difficulty score {:.3}",
            member.id(),
            member.graph().num_qubits(),
            member.score()
        );
    }

    // One process-wide cache: every shard's O(N³) preprocessing is paid
    // once, exactly like the serving layer.
    let cache = DeviceCache::new();
    let config = ShardConfig {
        sabre: SabreConfig {
            seed: 7,
            ..SabreConfig::fast()
        },
        cut_cost: Some(30.0),
        ..ShardConfig::default()
    };

    // 34 logical qubits: wider than every chip, so the plan must shard.
    let circuit = random::random_circuit(34, 400, 0.8, 42);
    let plan = route_sharded(&circuit, &fleet, &config, &cache)?;
    println!("\n{plan}");
    for shard in &plan.shards {
        println!(
            "  shard on {:<12} {:>2} logical qubits, {:>3} swaps, {:>4} local gates",
            shard.member,
            shard.logical_qubits.len(),
            shard.result.best.num_swaps,
            shard.result.best.physical.num_gates(),
        );
    }
    let report = plan.verify(&circuit, &fleet)?;
    println!(
        "verified: {} gates replayed across {} shards, {} cut gates, {} swaps",
        report.gates_replayed, report.shards, report.cut_gates, report.swaps_replayed
    );

    // The full machine-readable plan (deterministic bytes; what
    // `POST /route_sharded` returns under "plan").
    println!("\n{}", plan.to_json().to_pretty());

    // Optional: route a real QASM corpus against the fleet.
    if let Some(dir) = std::env::args().nth(1) {
        println!("\nrouting corpus from `{dir}`:");
        for circuit in sabre_qasm::load_dir(&dir)? {
            match route_sharded(&circuit, &fleet, &config, &cache) {
                Ok(plan) => println!(
                    "  {:<24} {} shards, {} cuts, {} swaps",
                    circuit.name(),
                    plan.shards.len(),
                    plan.cuts.len(),
                    plan.total_swaps()
                ),
                Err(e) => println!("  {:<24} failed: {e}", circuit.name()),
            }
        }
    }
    Ok(())
}
