//! The parallel multi-seed engine end to end: fan one circuit's restarts
//! across threads, then transpile a whole corpus in one batch call.
//!
//! ```text
//! cargo run --release --example parallel_batch
//! ```
//!
//! Output is deterministic: `RAYON_NUM_THREADS=1` and `=8` print the
//! same routing results (only timings differ).

use sabre::{transpile_batch, SabreConfig, SabreRouter, TranspileOptions};
use sabre_benchgen::{qft, random};
use sabre_circuit::Circuit;
use sabre_topology::devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = devices::ibm_q20_tokyo();
    println!("device: IBM Q20 Tokyo");

    // One hard circuit, 16 restarts running concurrently. Bit-identical
    // to `route` with the same config — only wall-clock differs.
    let config = SabreConfig {
        num_restarts: 16,
        ..SabreConfig::paper()
    };
    let router = SabreRouter::new(device.graph().clone(), config)?;
    let circuit = random::random_circuit(16, 300, 0.7, 42);
    let result = router.route_parallel(&circuit)?;
    println!(
        "route_parallel: {} restarts, best is #{} with +{} gates ({} SWAPs)",
        config.num_restarts,
        result.best_restart,
        result.added_gates(),
        result.best.num_swaps
    );

    // A corpus of circuits through the full pipeline in one call; the
    // router (and its O(n³) distance preprocessing) is built once.
    let corpus: Vec<Circuit> = (0..8)
        .map(|i| match i % 2 {
            0 => qft::qft(6 + (i as u32) / 2),
            _ => random::random_circuit(12, 100, 0.6, i as u64),
        })
        .collect();
    let outputs = transpile_batch(&corpus, device.graph(), &TranspileOptions::default())?;
    println!("\ntranspile_batch over {} circuits:", corpus.len());
    for (circuit, out) in corpus.iter().zip(&outputs) {
        let out = out.as_ref().expect("per-circuit transpile failed");
        println!(
            "  {:<12} {:>3} gates in, {:>3} out, {} SWAPs inserted",
            circuit.name(),
            circuit.num_gates(),
            out.circuit.num_gates(),
            out.swaps_inserted
        );
    }
    Ok(())
}
