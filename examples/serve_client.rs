//! Round-trip a circuit through a loopback `sabre-serve` instance: start
//! the server on an ephemeral port, register a device over HTTP, route a
//! QFT, refresh the calibration live, and scrape the metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_client
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sabre_json::JsonValue;
use sabre_serve::{start, ServeConfig};

/// One blocking HTTP request; returns `(status, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    // Reads to EOF, so opt out of keep-alive — otherwise the server
    // parks the connection until its idle timeout.
    let mut request =
        format!("{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n");
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    request.push_str(body.unwrap_or(""));
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &JsonValue) -> JsonValue {
    let (status, text) = http(addr, "POST", path, Some(&body.to_compact()));
    assert!(status < 300, "POST {path} failed with {status}: {text}");
    JsonValue::parse(&text).expect("JSON response")
}

fn main() {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();
    println!("server listening on http://{addr}");

    // Register IBM Q20 Tokyo under the id "tokyo".
    let registered = post(
        addr,
        "/devices",
        &JsonValue::object([("id", "tokyo".into()), ("builtin", "tokyo20".into())]),
    );
    println!(
        "registered device: {} qubits, {} couplings",
        registered.get("num_qubits").unwrap(),
        registered.get("num_edges").unwrap()
    );

    // Route a 5-qubit QFT with a per-request seed and trial count.
    let qft = sabre_benchgen::qft::qft(5);
    let route = |label: &str, extra: &[(&str, JsonValue)]| {
        let mut body = vec![
            ("device", JsonValue::from("tokyo")),
            (
                "circuit",
                JsonValue::object([
                    ("qasm", sabre_qasm::to_qasm(&qft).into()),
                    ("name", "qft5".into()),
                ]),
            ),
            (
                "config",
                JsonValue::object([("seed", 7u64.into()), ("trials", 5u64.into())]),
            ),
        ];
        body.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        let response = post(addr, "/route", &JsonValue::object(body));
        let result = response.get("result").unwrap();
        let best = result.get("best").unwrap();
        println!(
            "{label}: {} swaps (+{} gates), depth {}, {} search steps, {} ns/step",
            best.get("num_swaps").unwrap(),
            best.get("added_gates").unwrap(),
            best.get("depth").unwrap(),
            result.get("total_search_steps").unwrap(),
            result.get("ns_per_step").unwrap(),
        );
    };
    route("hop-based routing", &[]);

    // A fresh calibration lands: refresh the noise model live (the cache
    // recomputes only the weighted matrix) and route again — no restart.
    post(
        addr,
        "/devices/tokyo/noise",
        &JsonValue::object([(
            "calibrated",
            JsonValue::object([
                ("base", 0.02.into()),
                ("spread", 4.0.into()),
                ("seed", 1u64.into()),
            ]),
        )]),
    );
    route("noise-aware routing", &[]);

    // The admission telemetry the service exports for ops.
    let (status, metrics) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    for line in metrics.lines().filter(|l| {
        l.starts_with("sabre_serve_routing") || l.starts_with("sabre_serve_queue_depth")
    }) {
        println!("metrics: {line}");
    }

    handle.shutdown();
    println!("server drained and stopped");
}
