//! The decay knob (paper §IV-C3): trade gate count against circuit depth
//! by tuning `δ`, for a device whose coherence time (depth budget) or gate
//! fidelity (count budget) is the binding constraint.
//!
//! ```text
//! cargo run --release --example decay_tradeoff
//! ```

use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::qft;
use sabre_topology::devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = devices::ibm_q20_tokyo();
    let circuit = qft::qft(16);
    println!(
        "workload: {} ({} gates, depth {})\n",
        circuit.name(),
        circuit.num_gates(),
        circuit.depth()
    );
    println!("{:>8} {:>12} {:>8}", "delta", "added gates", "depth");

    for delta in [0.0, 0.001, 0.01, 0.1, 0.2] {
        let config = SabreConfig {
            decay_delta: delta,
            ..SabreConfig::default()
        };
        let router = SabreRouter::new(device.graph().clone(), config)?;
        let result = router.route(&circuit)?;
        println!(
            "{:>8} {:>12} {:>8}",
            delta,
            result.added_gates(),
            result.best.depth()
        );
    }

    println!("\nSmall δ optimizes the gate count; larger δ spreads SWAPs over disjoint");
    println!("qubit pairs, shortening the schedule at the cost of a few more gates.");
    Ok(())
}
