//! Route the 20-qubit Quantum Fourier Transform — the hardest Table II
//! workload (all-to-all interactions on every physical qubit of the
//! device) — and compare against the greedy and trivial baselines.
//!
//! ```text
//! cargo run --release --example qft_routing
//! ```

use sabre::{SabreConfig, SabreRouter};
use sabre_baseline::{greedy, trivial};
use sabre_benchgen::qft;
use sabre_topology::devices;
use sabre_verify::verify_routed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = devices::ibm_q20_tokyo();
    let graph = device.graph();
    let circuit = qft::qft(20);
    println!(
        "qft_20: {} gates ({} CNOTs), depth {}",
        circuit.num_gates(),
        circuit.num_two_qubit_gates(),
        circuit.depth()
    );

    let router = SabreRouter::new(graph.clone(), SabreConfig::default())?;
    let sabre = router.route(&circuit)?;
    let greedy_out = greedy::route(&circuit, graph);
    let trivial_out = trivial::route(&circuit, graph);

    println!("\n{:<10} {:>12} {:>10}", "router", "added gates", "depth");
    for (name, routed) in [
        ("sabre", &sabre.best),
        ("greedy", &greedy_out),
        ("trivial", &trivial_out),
    ] {
        // Never print an unverified number.
        verify_routed(
            &circuit,
            &routed.physical,
            routed.initial_layout.logical_to_physical(),
            routed.final_layout.logical_to_physical(),
            graph,
        )?;
        println!(
            "{:<10} {:>12} {:>10}",
            name,
            routed.added_gates(),
            routed.depth()
        );
    }

    assert!(
        sabre.best.added_gates() <= greedy_out.added_gates(),
        "SABRE should beat the greedy baseline on QFT"
    );
    println!(
        "\nSABRE inserted {:.1}% fewer gates than greedy and {:.1}% fewer than trivial.",
        100.0 * (1.0 - sabre.best.added_gates() as f64 / greedy_out.added_gates() as f64),
        100.0 * (1.0 - sabre.best.added_gates() as f64 / trivial_out.added_gates() as f64),
    );
    Ok(())
}
