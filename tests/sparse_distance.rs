//! Equivalence suite for the sparse distance engine: forcing the
//! on-demand row backend must change **nothing** about routing output —
//! not one bit — on any device family, with or without noise weighting.
//! Plus the kilo-qubit acceptance path: a deep circuit on a 1089-qubit
//! grid routes through the sparse engine (no `O(N²)` allocation) and
//! verifies.

use proptest::prelude::*;
use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::random;
use sabre_circuit::Qubit;
use sabre_topology::noise::NoiseModel;
use sabre_topology::{
    devices, CouplingGraph, DistanceBackend, DistanceMatrix, WeightedDistanceMatrix,
    DENSE_DISTANCE_THRESHOLD,
};
use sabre_verify::verify_routed;

/// The device families the tentpole must hold on: one fixed chip plus
/// every parametric generator, including the new heavy-hex lattice.
fn device_families() -> Vec<(&'static str, CouplingGraph)> {
    vec![
        ("tokyo20", devices::ibm_q20_tokyo().graph().clone()),
        ("grid6x6", devices::grid(6, 6).graph().clone()),
        ("ring24", devices::ring(24).graph().clone()),
        ("star16", devices::star(16).graph().clone()),
        ("heavy-hex4x8", devices::heavy_hex(4, 8).graph().clone()),
    ]
}

/// Sparse routing is bit-identical to dense routing: same best result,
/// same per-traversal telemetry, across device families × seeds.
#[test]
fn sparse_routing_is_bit_identical_to_dense_across_families() {
    for (family, graph) in device_families() {
        let width = graph.num_qubits().min(12);
        for seed in [1u64, 7, 42] {
            let circuit = random::random_circuit(width, 160, 0.7, seed);
            let config = SabreConfig {
                seed,
                ..SabreConfig::default()
            };
            let dense =
                SabreRouter::with_distance_backend(graph.clone(), config, DistanceBackend::Dense)
                    .unwrap()
                    .route(&circuit)
                    .unwrap();
            let sparse =
                SabreRouter::with_distance_backend(graph.clone(), config, DistanceBackend::Sparse)
                    .unwrap()
                    .route(&circuit)
                    .unwrap();
            assert_eq!(
                dense.best, sparse.best,
                "{family} seed {seed}: backends disagree on the best routing"
            );
            assert_eq!(
                dense.traversals, sparse.traversals,
                "{family} seed {seed}: backends disagree on traversal telemetry"
            );
        }
    }
}

/// The same bit-identity holds for noise-weighted routing, where the
/// sparse backend answers from cached Dijkstra rows instead of a dense
/// Floyd–Warshall-style closure.
#[test]
fn noise_weighted_sparse_routing_matches_dense() {
    for (family, graph) in device_families() {
        let width = graph.num_qubits().min(10);
        let noise = NoiseModel::calibrated(&graph, 0.02, 4.0, 3);
        let circuit = random::random_circuit(width, 120, 0.7, 11);
        let config = SabreConfig {
            seed: 5,
            ..SabreConfig::fast()
        };
        let dense = SabreRouter::with_noise_and_backend(
            graph.clone(),
            config,
            &noise,
            DistanceBackend::Dense,
        )
        .unwrap()
        .route(&circuit)
        .unwrap();
        let sparse = SabreRouter::with_noise_and_backend(
            graph.clone(),
            config,
            &noise,
            DistanceBackend::Sparse,
        )
        .unwrap()
        .route(&circuit)
        .unwrap();
        assert_eq!(
            dense.best, sparse.best,
            "{family}: noise-weighted backends disagree"
        );
        assert_eq!(dense.traversals, sparse.traversals);
    }
}

/// Kilo-qubit acceptance: grid 33×33 (1089 qubits) lands on the sparse
/// engine via the auto policy, routes a deep circuit, and the output
/// verifies gate-for-gate.
#[test]
fn kilo_qubit_grid_routes_through_the_sparse_engine() {
    let graph = devices::grid(33, 33).graph().clone();
    assert!(graph.num_qubits() > DENSE_DISTANCE_THRESHOLD);
    let router = SabreRouter::new(graph.clone(), SabreConfig::fast()).unwrap();
    assert!(
        router.distance_matrix().is_sparse(),
        "auto policy must pick the sparse engine past the threshold"
    );
    let circuit = random::random_circuit(150, 1_500, 0.9, 21);
    let result = router.route(&circuit).unwrap();
    assert!(result.best.num_swaps > 0, "a deep circuit needs routing");
    verify_routed(
        &circuit,
        &result.best.physical,
        result.best.initial_layout.logical_to_physical(),
        result.best.final_layout.logical_to_physical(),
        &graph,
    )
    .unwrap();
}

/// The same on heavy-hex, the other kilo-qubit family named by the
/// acceptance criteria (22×44 → 1199 qubits with bridges).
#[test]
fn kilo_qubit_heavy_hex_routes_through_the_sparse_engine() {
    let graph = devices::heavy_hex(22, 44).graph().clone();
    assert!(graph.num_qubits() > 1000);
    let router = SabreRouter::new(graph.clone(), SabreConfig::fast()).unwrap();
    assert!(router.distance_matrix().is_sparse());
    let circuit = random::random_circuit(80, 600, 0.9, 33);
    let result = router.route(&circuit).unwrap();
    verify_routed(
        &circuit,
        &result.best.physical,
        result.best.initial_layout.logical_to_physical(),
        result.best.final_layout.logical_to_physical(),
        &graph,
    )
    .unwrap();
}

/// A connected device drawn from the same generator pool the workspace
/// property tests use.
fn arb_device() -> impl Strategy<Value = CouplingGraph> {
    (0usize..5, 2u32..=16).prop_map(|(kind, size)| {
        let device = match kind {
            0 => devices::linear(size),
            1 => devices::ring(size.max(3)),
            2 => devices::grid(2, size.div_ceil(2)),
            3 => devices::star(size.max(2)),
            _ => devices::heavy_hex(size.div_ceil(4).max(1), (size % 5) + 3),
        };
        device.graph().clone()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every cached Dijkstra row agrees with a fresh Floyd–Warshall row.
    /// Integer edge weights keep every path sum exactly representable,
    /// so agreement is exact (`to_bits`), not approximate — the same
    /// guarantee the router's hop-valued cost matrix relies on.
    #[test]
    fn cached_dijkstra_rows_match_floyd_warshall(
        graph in arb_device(),
        salt in 0u32..100,
    ) {
        let weight = |a: Qubit, b: Qubit| f64::from((a.0 * 7 + b.0 * 3 + salt) % 5 + 1);
        let fw = WeightedDistanceMatrix::floyd_warshall(&graph, weight);
        let sparse = WeightedDistanceMatrix::with_backend(
            &graph, weight, DistanceBackend::Sparse,
        );
        let n = graph.num_qubits();
        for a in 0..n {
            // Two passes per source: the second is a cache hit and must
            // read back the identical Arc'd row.
            for _ in 0..2 {
                let row = sparse.row(Qubit(a));
                for b in 0..n {
                    let exact = fw.get(Qubit(a), Qubit(b));
                    prop_assert_eq!(
                        row[b as usize].to_bits(),
                        exact.to_bits(),
                        "row {} col {} diverged", a, b
                    );
                }
            }
        }
    }

    /// Hop-count rows from the sparse BFS engine equal the dense matrix
    /// on arbitrary connected devices.
    #[test]
    fn sparse_hop_rows_match_dense(graph in arb_device()) {
        let dense = DistanceMatrix::bfs(&graph);
        let sparse = DistanceMatrix::with_backend(&graph, DistanceBackend::Sparse);
        prop_assert_eq!(dense, sparse);
    }
}
