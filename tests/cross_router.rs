//! Cross-router integration: SABRE, BKA, greedy and trivial all route the
//! same workloads; all outputs verify; the quality ordering matches the
//! paper's narrative.

use sabre::{SabreConfig, SabreRouter};
use sabre_baseline::bka::{Bka, BkaConfig};
use sabre_baseline::{greedy, trivial};
use sabre_benchgen::{qft, random, registry};
use sabre_circuit::Circuit;
use sabre_topology::{devices, CouplingGraph};
use sabre_verify::verify_routed;

fn verify(original: &Circuit, routed: &sabre::RoutedCircuit, graph: &CouplingGraph, who: &str) {
    verify_routed(
        original,
        &routed.physical,
        routed.initial_layout.logical_to_physical(),
        routed.final_layout.logical_to_physical(),
        graph,
    )
    .unwrap_or_else(|e| panic!("{who} failed verification: {e}"));
}

#[test]
fn all_routers_verify_on_qft10() {
    let device = devices::ibm_q20_tokyo();
    let graph = device.graph();
    let circuit = qft::qft(10);

    let sabre = SabreRouter::new(graph.clone(), SabreConfig::paper())
        .unwrap()
        .route(&circuit)
        .unwrap();
    verify(&circuit, &sabre.best, graph, "sabre");

    let bka = Bka::new(graph.clone(), BkaConfig::default())
        .route(&circuit)
        .unwrap();
    verify(&circuit, &bka.routed, graph, "bka");

    let g = greedy::route(&circuit, graph);
    verify(&circuit, &g, graph, "greedy");

    let t = trivial::route(&circuit, graph);
    verify(&circuit, &t, graph, "trivial");

    // Quality ordering from the paper: SABRE beats the naive baselines.
    assert!(sabre.best.added_gates() <= g.added_gates());
    assert!(sabre.best.added_gates() <= t.added_gates());
}

#[test]
fn all_routers_verify_on_random_workloads() {
    let device = devices::ibm_qx5();
    let graph = device.graph();
    for seed in 0..5 {
        let circuit = random::random_circuit(9, 60, 0.6, seed);
        let sabre = SabreRouter::new(graph.clone(), SabreConfig::fast())
            .unwrap()
            .route(&circuit)
            .unwrap();
        verify(&circuit, &sabre.best, graph, "sabre");
        let bka = Bka::new(graph.clone(), BkaConfig::default())
            .route(&circuit)
            .unwrap();
        verify(&circuit, &bka.routed, graph, "bka");
        let g = greedy::route(&circuit, graph);
        verify(&circuit, &g, graph, "greedy");
        let t = trivial::route(&circuit, graph);
        verify(&circuit, &t, graph, "trivial");
    }
}

#[test]
fn sabre_matches_bka_on_small_rows() {
    // Paper §V-A1: on the small category SABRE's perfect-mapping search
    // dominates. Per-row we allow one SWAP of slack (our synthetic
    // `alu-v0_27` stand-in is one of the paper's own "almost match"
    // cases); in aggregate SABRE must win outright.
    let device = devices::ibm_q20_tokyo();
    let graph = device.graph();
    let mut sabre_total = 0usize;
    let mut bka_total = 0usize;
    for spec in registry::table2() {
        if spec.category != registry::Category::Small {
            continue;
        }
        let circuit = spec.generate();
        let sabre = SabreRouter::new(graph.clone(), SabreConfig::paper())
            .unwrap()
            .route(&circuit)
            .unwrap();
        let bka = Bka::new(graph.clone(), BkaConfig::default())
            .route(&circuit)
            .unwrap();
        assert!(
            sabre.added_gates() <= bka.routed.added_gates() + 3,
            "{}: sabre {} far above bka {}",
            spec.name,
            sabre.added_gates(),
            bka.routed.added_gates()
        );
        sabre_total += sabre.added_gates();
        bka_total += bka.routed.added_gates();
    }
    assert!(
        sabre_total <= bka_total,
        "aggregate: sabre {sabre_total} > bka {bka_total}"
    );
}

#[test]
fn bka_oom_rows_match_paper() {
    use sabre_baseline::bka::BkaError;
    let device = devices::ibm_q20_tokyo();
    let graph = device.graph();
    // A reduced budget keeps the test fast; the full calibrated-default
    // frontier (exactly the paper's two OOM rows) is exercised by the
    // `table2`/`scalability` experiment binaries.
    let config = BkaConfig {
        node_budget: 500_000,
        ..BkaConfig::default()
    };
    for name in ["ising_model_16", "qft_20"] {
        let spec = registry::by_name(name).unwrap();
        assert!(
            spec.bka_out_of_memory(),
            "{name} is an OOM row in the paper"
        );
        let result = Bka::new(graph.clone(), config).route(&spec.generate());
        assert!(
            matches!(result, Err(BkaError::MemoryLimitExceeded { .. })),
            "{name}: expected budget exhaustion, got {result:?}"
        );
    }
}
