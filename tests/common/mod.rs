//! Shared loopback HTTP client for the integration suites
//! (`serve_http.rs`, `sharded_routing.rs`): one connection per request,
//! reading the response to EOF. Kept in one place so every suite tests
//! the same client behavior.

// Each test binary uses a subset of these helpers.
#![allow(dead_code)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sabre_json::JsonValue;

/// Blocking HTTP/1.1 client for one request: returns status, lower-cased
/// headers, and the body text. Sends `Connection: close` because it
/// reads to EOF — without it the keep-alive server would hold the
/// connection open until its idle timeout.
pub fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, String) {
    http_with_headers(addr, method, path, &[], body)
}

/// Like [`http`], with extra request headers (e.g. `X-Request-Id`).
pub fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, HashMap<String, String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut request =
        format!("{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

/// `POST path` with a JSON body; panics on a non-JSON response.
pub fn post_json(addr: SocketAddr, path: &str, body: &JsonValue) -> (u16, JsonValue) {
    let (status, _, text) = http(addr, "POST", path, Some(&body.to_compact()));
    let parsed = JsonValue::parse(&text)
        .unwrap_or_else(|e| panic!("non-JSON response to {path} ({status}): {e}: {text}"));
    (status, parsed)
}

/// `GET path`, expecting a JSON response.
pub fn get_json(addr: SocketAddr, path: &str) -> (u16, JsonValue) {
    let (status, _, text) = http(addr, "GET", path, None);
    (status, JsonValue::parse(&text).expect("JSON response"))
}
