//! Differential suite pinning the incremental search engine
//! (`sabre::router::route_pass`, delta-scored over a persistent
//! `SearchState`) to the retained reference implementation
//! (`sabre::reference::reference_route_pass`, full re-summation per
//! candidate): for the same circuit, device, layout, config, and seed the
//! two must produce **identical** `RoutedCircuit`s — same emitted gates,
//! same layouts, same `num_swaps`/`search_steps`/`forced_routings`, which
//! implies the same candidate orders and the same tie-break draws at every
//! search step.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sabre::reference::reference_route_pass;
use sabre::router::route_pass;
use sabre::{HeuristicKind, Layout, SabreConfig, SabreRouter};
use sabre_benchgen::random;
use sabre_circuit::Circuit;
use sabre_topology::noise::NoiseModel;
use sabre_topology::{devices, CouplingGraph, WeightedDistanceMatrix};

/// Routes `circuit` with both engines from the same start state and
/// asserts the results are identical.
fn assert_engines_agree(
    circuit: &Circuit,
    graph: &CouplingGraph,
    dist: &WeightedDistanceMatrix,
    config: &SabreConfig,
    label: &str,
) {
    let layout = Layout::identity(graph.num_qubits());
    let mut rng_new = StdRng::seed_from_u64(config.seed);
    let mut rng_ref = StdRng::seed_from_u64(config.seed);
    let incremental = route_pass(circuit, graph, dist, layout.clone(), config, &mut rng_new);
    let reference = reference_route_pass(circuit, graph, dist, layout, config, &mut rng_ref);
    assert_eq!(incremental, reference, "engines diverged on {label}");
}

/// The four topology families the incremental engine must match the
/// reference on (tentpole contract).
fn test_topologies() -> Vec<(&'static str, CouplingGraph)> {
    vec![
        ("tokyo", devices::ibm_q20_tokyo().graph().clone()),
        ("grid4x5", devices::grid(4, 5).graph().clone()),
        ("ring12", devices::ring(12).graph().clone()),
        ("star8", devices::star(8).graph().clone()),
    ]
}

#[test]
fn engines_agree_on_fixed_corpus_across_topologies_and_seeds() {
    for (name, graph) in test_topologies() {
        let dist = WeightedDistanceMatrix::hops(&graph);
        let n = graph.num_qubits().clamp(4, 12);
        for seed in [0u64, 7, 2019] {
            for gates in [15usize, 120, 600] {
                let circuit = random::random_circuit(n, gates, 0.7, seed ^ gates as u64);
                let config = SabreConfig {
                    seed,
                    ..SabreConfig::fast()
                };
                assert_engines_agree(
                    &circuit,
                    &graph,
                    &dist,
                    &config,
                    &format!("{name}/seed={seed}/gates={gates}"),
                );
            }
        }
    }
}

#[test]
fn engines_agree_on_every_heuristic_kind() {
    let graph = devices::ibm_q20_tokyo().graph().clone();
    let dist = WeightedDistanceMatrix::hops(&graph);
    let circuit = random::random_circuit(14, 300, 0.8, 42);
    for kind in [
        HeuristicKind::Basic,
        HeuristicKind::LookAhead,
        HeuristicKind::Decay,
    ] {
        for extended_set_size in [0usize, 1, 20, 100] {
            let config = SabreConfig {
                heuristic: kind,
                extended_set_size,
                ..SabreConfig::fast()
            };
            assert_engines_agree(
                &circuit,
                &graph,
                &dist,
                &config,
                &format!("{kind:?}/|E|={extended_set_size}"),
            );
        }
    }
}

#[test]
fn engines_agree_on_deep_grid_workload() {
    // The bench workload shape: grid10x10, deep synthetic circuit — the
    // configuration the ≥3× per-step speedup is claimed on must also be
    // the configuration equivalence is proven on.
    let graph = devices::grid(10, 10).graph().clone();
    let dist = WeightedDistanceMatrix::hops(&graph);
    let circuit = random::random_circuit(80, 2_000, 0.9, 1);
    let config = SabreConfig::fast();
    assert_engines_agree(&circuit, &graph, &dist, &config, "grid10x10/deep");
}

#[test]
fn engines_agree_under_forced_routing() {
    // Zero-cost matrix: every score ties, the search random-walks, and the
    // livelock guard fires — the forced-routing path and its decay/telemetry
    // resets must behave identically in both engines.
    let graph = devices::linear(24).graph().clone();
    let blind = WeightedDistanceMatrix::floyd_warshall(&graph, |_, _| 0.0);
    let mut circuit = Circuit::new(24);
    circuit.cx(sabre_circuit::Qubit(0), sabre_circuit::Qubit(23));
    let config = SabreConfig {
        livelock_slack: 0,
        ..SabreConfig::fast()
    };
    assert_engines_agree(&circuit, &graph, &blind, &config, "forced-routing");
}

#[test]
fn engines_agree_on_sparse_fronts_with_long_swap_chains() {
    // Long linear devices with distant two-qubit pairs: each executed gate
    // needs many SWAPs, so the vast majority of search iterations leave the
    // front layer untouched — the exact regime the incremental engine's
    // clean-front skip path (no drain, no front rebuild, no extended-set
    // BFS) is exercised hardest in. The reference engine recomputes
    // everything every step; outputs must still be identical.
    for n in [16u32, 24, 32] {
        let graph = devices::linear(n).graph().clone();
        let dist = WeightedDistanceMatrix::hops(&graph);
        let mut circuit = Circuit::new(n);
        // Far-apart pairs, re-crossing the line each round so the front
        // stays small (1-2 gates) while SWAP chains stay long.
        for round in 0..6u32 {
            for k in 0..(n / 4) {
                let a = sabre_circuit::Qubit(k);
                let b = sabre_circuit::Qubit(n - 1 - ((k + round) % (n / 2)));
                if a != b {
                    circuit.cx(a, b);
                    circuit.rz(b, 0.25 * f64::from(round + 1));
                }
            }
        }
        for seed in [1u64, 2019] {
            let config = SabreConfig {
                seed,
                ..SabreConfig::fast()
            };
            assert_engines_agree(
                &circuit,
                &graph,
                &dist,
                &config,
                &format!("linear{n}/sparse-front/seed={seed}"),
            );
        }
    }
}

#[test]
fn engines_agree_on_wide_extended_sets() {
    // Oversized |E| relative to the circuit: the staged chunked summation
    // over front + extended rows sees long slices (vectorized lanes plus
    // remainders of every length), and extended-set reuse across clean
    // steps must not go stale.
    let graph = devices::grid(6, 6).graph().clone();
    let dist = WeightedDistanceMatrix::hops(&graph);
    for gates in [37usize, 250, 999] {
        let circuit = random::random_circuit(30, gates, 0.85, gates as u64);
        for extended_set_size in [13usize, 64, 200] {
            let config = SabreConfig {
                extended_set_size,
                extended_set_weight: 0.7,
                ..SabreConfig::fast()
            };
            assert_engines_agree(
                &circuit,
                &graph,
                &dist,
                &config,
                &format!("grid6x6/gates={gates}/|E|={extended_set_size}"),
            );
        }
    }
}

#[test]
fn engines_agree_on_noise_weighted_distances() {
    // Arbitrary f64 edge costs: delta sums may regroup floating-point
    // arithmetic, but any drift is orders of magnitude below the 1e-12
    // tie-break slack — for these pinned seeds the routed output must
    // still match exactly.
    let device = devices::ibm_q20_tokyo();
    let graph = device.graph().clone();
    let noise = NoiseModel::calibrated(&graph, 0.02, 4.0, 3);
    let dist = WeightedDistanceMatrix::floyd_warshall(&graph, |a, b| {
        // Log-domain SWAP costs like SabreRouter::with_noise builds.
        noise.swap_cost(a, b).max(1e-9)
    });
    for seed in [0u64, 3, 11, 2019] {
        let circuit = random::random_circuit(16, 400, 0.75, seed);
        let config = SabreConfig {
            seed,
            ..SabreConfig::fast()
        };
        assert_engines_agree(
            &circuit,
            &graph,
            &dist,
            &config,
            &format!("noise/seed={seed}"),
        );
    }
}

#[test]
fn profiling_is_bit_identical_interleaved_with_reference() {
    // Interleaved A/B: for each workload, (A) the pass-level engine is
    // pinned against the reference scorer, then (B) a full profiled
    // route runs, then (A') an unprofiled route — B and A' must produce
    // the same routed artifact bit-for-bit, proving the collector
    // neither perturbs the search nor leaks state between calls.
    for (name, graph) in test_topologies() {
        let dist = WeightedDistanceMatrix::hops(&graph);
        let n = graph.num_qubits().clamp(4, 14);
        for seed in [0u64, 7, 2019] {
            let circuit = random::random_circuit(n, 240, 0.75, seed);
            let config = SabreConfig {
                seed,
                ..SabreConfig::fast()
            };
            // A: engine vs reference (profiling off at the pass level).
            assert_engines_agree(
                &circuit,
                &graph,
                &dist,
                &config,
                &format!("{name}/profiled-interleave/seed={seed}"),
            );
            // B: full profiled route.
            let on = SabreRouter::new(
                graph.clone(),
                SabreConfig {
                    profile: true,
                    ..config
                },
            )
            .expect("router (profile on)")
            .route(&circuit)
            .expect("profiled route");
            // A': full unprofiled route, after B ran.
            let off = SabreRouter::new(graph.clone(), config)
                .expect("router (profile off)")
                .route(&circuit)
                .expect("unprofiled route");

            assert_eq!(
                off.best, on.best,
                "profiling changed the routed artifact on {name}/seed={seed}"
            );
            assert_eq!(off.best_restart, on.best_restart);
            assert_eq!(off.traversals, on.traversals);
            assert_eq!(
                off.first_traversal_added_gates,
                on.first_traversal_added_gates
            );
            assert!(off.profile.is_none(), "profile off returns no profile");
            let profile = on.profile.as_ref().expect("profile on returns one");
            // The collector's counters must agree with the search's own
            // telemetry: every traversal of every restart was profiled.
            assert_eq!(
                profile.traversals as usize,
                on.traversals.len(),
                "one profiled entry per traversal"
            );
            assert_eq!(
                profile.per_traversal_steps.len(),
                on.traversals.len(),
                "per-traversal step counts cover the whole search"
            );
            assert!(profile.search_steps > 0);
            assert!(profile.hot_loop_ns() > 0, "phase spans recorded time");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random circuits × random devices × random seeds: the incremental
    /// engine is a pure optimization — its output is indistinguishable
    /// from the reference scorer's.
    #[test]
    fn incremental_engine_is_bit_identical_to_reference(
        (n, gates, circuit_seed) in (2u32..=10, 0usize..200, any::<u64>()),
        topology in 0usize..4,
        route_seed in any::<u64>(),
        extended_set_size in 0usize..40,
        decay_delta in 0.0f64..0.1,
    ) {
        let graph = match topology {
            0 => devices::ibm_q20_tokyo().graph().clone(),
            1 => devices::grid(3, 4).graph().clone(),
            2 => devices::ring(10).graph().clone(),
            _ => devices::star(10).graph().clone(),
        };
        let n = n.min(graph.num_qubits());
        let circuit = random::random_circuit(n.max(2), gates, 0.6, circuit_seed);
        let dist = WeightedDistanceMatrix::hops(&graph);
        let config = SabreConfig {
            seed: route_seed,
            extended_set_size,
            decay_delta,
            ..SabreConfig::fast()
        };
        let layout = Layout::identity(graph.num_qubits());
        let mut rng_new = StdRng::seed_from_u64(config.seed);
        let mut rng_ref = StdRng::seed_from_u64(config.seed);
        let incremental = route_pass(&circuit, &graph, &dist, layout.clone(), &config, &mut rng_new);
        let reference = reference_route_pass(&circuit, &graph, &dist, layout, &config, &mut rng_ref);
        prop_assert_eq!(incremental, reference);
    }
}
