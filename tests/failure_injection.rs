//! Failure injection: corrupt a *correct* routed circuit in every way a
//! buggy router could, and assert the verifier catches each one. This is
//! the test of the tests — a verifier that waves through corrupted output
//! would silently invalidate every experiment in the repository.

use sabre::{RoutedCircuit, SabreConfig, SabreRouter};
use sabre_benchgen::random;
use sabre_circuit::{Circuit, Gate, Qubit, TwoQubitKind};
use sabre_topology::{devices, CouplingGraph};
use sabre_verify::{verify_routed, verify_semantics_small, VerifyError};

/// A known-good routing to corrupt: dense traffic on a sparse device so
/// plenty of SWAPs exist to tamper with.
fn good_routing() -> (Circuit, RoutedCircuit, CouplingGraph) {
    let device = devices::linear(7);
    let circuit = random::random_circuit(7, 60, 0.7, 7);
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
    let routed = router.route(&circuit).unwrap().best;
    assert!(
        routed.num_swaps > 0,
        "fixture must contain swaps to corrupt"
    );
    (circuit, routed, device.graph().clone())
}

fn check(
    original: &Circuit,
    routed: &RoutedCircuit,
    graph: &CouplingGraph,
) -> Result<(), VerifyError> {
    verify_routed(
        original,
        &routed.physical,
        routed.initial_layout.logical_to_physical(),
        routed.final_layout.logical_to_physical(),
        graph,
    )
    .map(|_| ())
}

fn rebuild_with_gates(routed: &RoutedCircuit, gates: Vec<Gate>) -> RoutedCircuit {
    let mut physical = Circuit::with_name(routed.physical.num_qubits(), routed.physical.name());
    physical.extend(gates);
    RoutedCircuit {
        physical,
        ..routed.clone()
    }
}

#[test]
fn untouched_routing_passes() {
    let (original, routed, graph) = good_routing();
    assert!(check(&original, &routed, &graph).is_ok());
}

#[test]
fn dropping_any_single_gate_is_caught() {
    let (original, routed, graph) = good_routing();
    for drop_idx in 0..routed.physical.num_gates() {
        let gates: Vec<Gate> = routed
            .physical
            .gates()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop_idx)
            .map(|(_, g)| *g)
            .collect();
        let corrupted = rebuild_with_gates(&routed, gates);
        assert!(
            check(&original, &corrupted, &graph).is_err(),
            "dropping gate {drop_idx} went unnoticed"
        );
    }
}

#[test]
fn duplicating_a_gate_is_caught() {
    let (original, routed, graph) = good_routing();
    // Duplicate the first non-swap gate (duplicating a SWAP changes the
    // permutation and is caught as a layout mismatch; a non-swap duplicate
    // must be caught as an unexpected/unready gate).
    let dup_idx = routed
        .physical
        .gates()
        .iter()
        .position(|g| !g.is_swap())
        .expect("routing contains non-swap gates");
    let mut gates = routed.physical.gates().to_vec();
    gates.insert(dup_idx, gates[dup_idx]);
    let corrupted = rebuild_with_gates(&routed, gates);
    assert!(check(&original, &corrupted, &graph).is_err());
}

#[test]
fn swapping_two_dependent_gates_is_caught() {
    let (original, routed, graph) = good_routing();
    // Find two adjacent non-swap gates sharing a wire and flip them.
    let gates = routed.physical.gates().to_vec();
    for i in 0..gates.len() - 1 {
        let (a, b) = (&gates[i], &gates[i + 1]);
        if a.is_swap() || b.is_swap() {
            continue;
        }
        let shares_wire = {
            let (x, y) = a.qubits();
            b.acts_on(x) || y.is_some_and(|y| b.acts_on(y))
        };
        let differ = a != b;
        if shares_wire && differ {
            let mut mutated = gates.clone();
            mutated.swap(i, i + 1);
            let corrupted = rebuild_with_gates(&routed, mutated);
            assert!(
                check(&original, &corrupted, &graph).is_err(),
                "reordering dependent gates {i},{} went unnoticed",
                i + 1
            );
            return;
        }
    }
    panic!("fixture had no adjacent dependent gate pair");
}

#[test]
fn flipping_cx_direction_is_caught() {
    let (original, routed, graph) = good_routing();
    let flip_idx = routed
        .physical
        .gates()
        .iter()
        .position(|g| {
            matches!(
                g,
                Gate::Two {
                    kind: TwoQubitKind::Cx,
                    ..
                }
            ) && !g.is_swap()
        })
        .expect("routing contains a CX");
    let mut gates = routed.physical.gates().to_vec();
    if let Gate::Two { kind, a, b, params } = gates[flip_idx] {
        gates[flip_idx] = Gate::Two {
            kind,
            a: b,
            b: a,
            params,
        };
    }
    let corrupted = rebuild_with_gates(&routed, gates);
    assert!(check(&original, &corrupted, &graph).is_err());
}

#[test]
fn retargeting_a_gate_is_caught() {
    let (original, routed, graph) = good_routing();
    // Move a single-qubit gate to a different wire.
    let idx = routed
        .physical
        .gates()
        .iter()
        .position(|g| g.qubits().1.is_none())
        .expect("routing contains a 1q gate");
    let mut gates = routed.physical.gates().to_vec();
    if let Gate::One {
        kind,
        qubit,
        params,
    } = gates[idx]
    {
        let other = Qubit((qubit.0 + 1) % routed.physical.num_qubits());
        gates[idx] = Gate::One {
            kind,
            qubit: other,
            params,
        };
    }
    let corrupted = rebuild_with_gates(&routed, gates);
    assert!(check(&original, &corrupted, &graph).is_err());
}

#[test]
fn lying_about_the_initial_layout_is_caught() {
    let (original, routed, graph) = good_routing();
    let mut wrong = routed.initial_layout.logical_to_physical().to_vec();
    wrong.swap(0, 1);
    let result = verify_routed(
        &original,
        &routed.physical,
        &wrong,
        routed.final_layout.logical_to_physical(),
        &graph,
    );
    assert!(result.is_err());
}

#[test]
fn lying_about_the_final_layout_is_caught() {
    let (original, routed, graph) = good_routing();
    let mut wrong = routed.final_layout.logical_to_physical().to_vec();
    wrong.swap(2, 3);
    let result = verify_routed(
        &original,
        &routed.physical,
        routed.initial_layout.logical_to_physical(),
        &wrong,
        &graph,
    );
    assert!(result.is_err());
}

#[test]
fn uncoupled_gate_is_caught_even_when_replay_would_pass() {
    // A "routing" that is semantically right but physically illegal: the
    // identity transformation is a perfect replay of the original, yet
    // CX(0,2) cannot execute on a line.
    let rich = devices::complete(4);
    let sparse = devices::linear(4);
    let mut original = Circuit::new(4);
    original.cx(Qubit(0), Qubit(2));
    let identity: Vec<Qubit> = (0..4).map(Qubit).collect();
    assert!(verify_routed(&original, &original, &identity, &identity, rich.graph()).is_ok());
    assert!(matches!(
        verify_routed(&original, &original, &identity, &identity, sparse.graph()),
        Err(VerifyError::UncoupledGate { .. })
    ));
}

#[test]
fn simulator_catches_what_replay_cannot() {
    // Replace a SWAP with 2 of its 3 CNOTs. The replay check trusts the
    // `swap` label and would reject this as an unexpected gate — but a
    // router emitting *unlabeled* wrong decompositions can only be caught
    // semantically.
    let device = devices::linear(3);
    let mut original = Circuit::new(3);
    original.cx(Qubit(0), Qubit(2));
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
    let routed = router.route(&original).unwrap().best;

    // Decompose SWAPs correctly: simulator must accept.
    let correct = routed.decomposed();
    assert!(verify_semantics_small(
        &original,
        &correct,
        routed.initial_layout.logical_to_physical(),
        routed.final_layout.logical_to_physical(),
    )
    .is_ok());

    // Break one CNOT of one decomposed SWAP: simulator must reject.
    let mut gates = correct.gates().to_vec();
    let cx_idx = gates
        .iter()
        .position(|g| g.is_two_qubit())
        .expect("decomposed circuit has CNOTs");
    gates.remove(cx_idx);
    let mut broken = Circuit::new(correct.num_qubits());
    broken.extend(gates);
    assert!(verify_semantics_small(
        &original,
        &broken,
        routed.initial_layout.logical_to_physical(),
        routed.final_layout.logical_to_physical(),
    )
    .is_err());
}
