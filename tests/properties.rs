//! Property-based tests spanning the whole workspace: for arbitrary
//! circuits and arbitrary connected devices, routing must always produce
//! verified, conservative, reproducible results.

use proptest::prelude::*;
use sabre::{HeuristicKind, Layout, SabreConfig, SabreRouter};
use sabre_baseline::{greedy, trivial};
use sabre_benchgen::random;
use sabre_circuit::{Circuit, Qubit};
use sabre_qasm::{parse, to_qasm};
use sabre_topology::{devices, CouplingGraph, DistanceMatrix};
use sabre_verify::{verify_routed, verify_semantics_small};

/// A connected device with at least `min_qubits` physical qubits.
fn arb_device(min_qubits: u32) -> impl Strategy<Value = CouplingGraph> {
    (0usize..7, min_qubits..=10u32).prop_map(move |(kind, size)| {
        let size = size.max(min_qubits);
        let device = match kind {
            0 => devices::linear(size),
            1 => devices::ring(size.max(3)),
            2 => devices::grid(2, size.div_ceil(2)),
            3 => devices::star(size.max(2)),
            4 => devices::complete(size),
            5 => devices::ibm_q20_tokyo(),
            _ => devices::ibm_qx5(),
        };
        device.graph().clone()
    })
}

/// Parameters for a deterministic random circuit.
fn arb_circuit_params() -> impl Strategy<Value = (u32, usize, u64)> {
    (2u32..=7, 0usize..50, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SABRE output always verifies, on any device × any circuit.
    #[test]
    fn sabre_output_always_verifies(
        (n, gates, seed) in arb_circuit_params(),
        graph in arb_device(7),
        delta in 0.0f64..0.2,
    ) {
        let circuit = random::random_circuit(n, gates, 0.6, seed);
        let config = SabreConfig { decay_delta: delta, ..SabreConfig::fast() };
        let router = SabreRouter::new(graph.clone(), config).unwrap();
        let result = router.route(&circuit).unwrap();
        let routed = &result.best;
        prop_assert!(verify_routed(
            &circuit,
            &routed.physical,
            routed.initial_layout.logical_to_physical(),
            routed.final_layout.logical_to_physical(),
            &graph,
        ).is_ok());
        // Conservation: output = input + swaps; added gates divisible by 3.
        prop_assert_eq!(
            routed.physical.num_gates(),
            circuit.num_gates() + routed.num_swaps
        );
        prop_assert_eq!(routed.added_gates() % 3, 0);
    }

    /// All heuristic variants terminate and verify.
    #[test]
    fn every_heuristic_variant_verifies(
        (n, gates, seed) in arb_circuit_params(),
        kind_idx in 0usize..3,
    ) {
        let kind = [HeuristicKind::Basic, HeuristicKind::LookAhead, HeuristicKind::Decay][kind_idx];
        let circuit = random::random_circuit(n, gates, 0.7, seed);
        let graph = devices::ibm_q20_tokyo().graph().clone();
        let config = SabreConfig { heuristic: kind, ..SabreConfig::fast() };
        let router = SabreRouter::new(graph.clone(), config).unwrap();
        let result = router.route(&circuit).unwrap();
        prop_assert!(verify_routed(
            &circuit,
            &result.best.physical,
            result.best.initial_layout.logical_to_physical(),
            result.best.final_layout.logical_to_physical(),
            &graph,
        ).is_ok());
    }

    /// Routing on small devices preserves the unitary exactly
    /// (simulator-checked, no trust in gate labels).
    #[test]
    fn routing_preserves_semantics(
        n in 2u32..=5,
        gates in 0usize..30,
        seed in any::<u64>(),
    ) {
        let circuit = random::random_circuit(n, gates, 0.5, seed);
        let graph = devices::linear(6).graph().clone();
        let router = SabreRouter::new(graph, SabreConfig::fast()).unwrap();
        let result = router.route(&circuit).unwrap();
        prop_assert!(verify_semantics_small(
            &circuit,
            &result.best.physical,
            result.best.initial_layout.logical_to_physical(),
            result.best.final_layout.logical_to_physical(),
        ).is_ok());
    }

    /// Baselines are also always correct (they share the verification bar
    /// even though their quality differs).
    #[test]
    fn baselines_always_verify(
        (n, gates, seed) in arb_circuit_params(),
    ) {
        let circuit = random::random_circuit(n, gates, 0.6, seed);
        let graph = devices::ibm_qx5().graph().clone();
        for routed in [greedy::route(&circuit, &graph), trivial::route(&circuit, &graph)] {
            prop_assert!(verify_routed(
                &circuit,
                &routed.physical,
                routed.initial_layout.logical_to_physical(),
                routed.final_layout.logical_to_physical(),
                &graph,
            ).is_ok());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QASM round-trip is exact for arbitrary circuits, including
    /// arbitrary rotation angles.
    #[test]
    fn qasm_round_trip((n, gates, seed) in arb_circuit_params()) {
        let circuit = random::random_circuit(n, gates, 0.4, seed);
        let text = to_qasm(&circuit);
        let mut parsed = parse(&text).unwrap();
        parsed.set_name(circuit.name());
        prop_assert_eq!(parsed, circuit);
    }

    /// Reversal is an involution and preserves counts/depth.
    #[test]
    fn reversal_involution((n, gates, seed) in arb_circuit_params()) {
        let circuit = random::random_circuit(n, gates, 0.5, seed);
        let rev = circuit.reversed();
        prop_assert_eq!(rev.num_gates(), circuit.num_gates());
        prop_assert_eq!(rev.depth(), circuit.depth());
        prop_assert_eq!(rev.reversed(), circuit);
    }

    /// Distance matrices satisfy metric axioms and match BFS.
    #[test]
    fn distance_metric_axioms(graph in arb_device(2)) {
        let d = DistanceMatrix::floyd_warshall(&graph);
        prop_assert_eq!(d.clone(), DistanceMatrix::bfs(&graph));
        let n = graph.num_qubits();
        for i in 0..n {
            prop_assert_eq!(d.get(Qubit(i), Qubit(i)), 0);
            for j in 0..n {
                prop_assert_eq!(d.get(Qubit(i), Qubit(j)), d.get(Qubit(j), Qubit(i)));
            }
        }
        // Triangle inequality over finite entries.
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (ij, ik, kj) =
                        (d.get(Qubit(i), Qubit(j)), d.get(Qubit(i), Qubit(k)), d.get(Qubit(k), Qubit(j)));
                    if ik != DistanceMatrix::UNREACHABLE && kj != DistanceMatrix::UNREACHABLE {
                        prop_assert!(ij <= ik + kj);
                    }
                }
            }
        }
    }

    /// Layouts stay bijective under arbitrary SWAP sequences, and swap
    /// replay equals direct construction.
    #[test]
    fn layout_swap_sequences_stay_bijective(
        n in 2u32..=12,
        swaps in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
    ) {
        let mut layout = Layout::identity(n);
        for (a, b) in swaps {
            let (a, b) = (a % n, b % n);
            if a != b {
                layout.swap_physical(Qubit(a), Qubit(b));
            }
        }
        prop_assert!(layout.is_consistent());
    }

    /// Embeddable circuits really embed (generator ↔ checker agreement).
    #[test]
    fn embeddable_generator_matches_checker(
        n in 2u32..=8,
        gates in 1usize..40,
        seed in any::<u64>(),
    ) {
        let tokyo = devices::ibm_q20_tokyo();
        let circuit = random::embeddable_circuit(tokyo.graph(), n, gates, 0.6, seed);
        let ig = sabre_circuit::interaction::InteractionGraph::of(&circuit);
        prop_assert!(sabre_topology::embedding::is_embeddable(&ig, tokyo.graph()));
    }

    /// A circuit that needs no routing (all gates on coupled pairs under
    /// identity) costs the trivial baseline zero SWAPs, and its output
    /// stays a faithful (possibly reordered-within-DAG) replay.
    #[test]
    fn trivial_router_inserts_nothing_on_compliant_circuits(
        gates in 0usize..40,
        seed in any::<u64>(),
    ) {
        let graph = devices::ibm_q20_tokyo().graph().clone();
        let edges: Vec<(u32, u32)> =
            graph.edges().iter().map(|&(a, b)| (a.0, b.0)).collect();
        let circuit = random::random_circuit_on_edges(20, &edges, gates, 0.8, seed);
        let routed = trivial::route(&circuit, &graph);
        prop_assert_eq!(routed.num_swaps, 0);
        prop_assert_eq!(routed.physical.num_gates(), circuit.num_gates());
        prop_assert!(verify_routed(
            &circuit,
            &routed.physical,
            routed.initial_layout.logical_to_physical(),
            routed.final_layout.logical_to_physical(),
            &graph,
        ).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The peephole optimizer never changes the unitary and never grows
    /// the circuit.
    #[test]
    fn optimizer_preserves_semantics(
        n in 1u32..=5,
        gates in 0usize..40,
        seed in any::<u64>(),
    ) {
        use sabre_circuit::optimize::optimize;
        use sabre_sim::equivalence::unitaries_equal;
        let circuit = if n >= 2 {
            random::random_circuit(n, gates, 0.4, seed)
        } else {
            // Single-wire circuits exercise the 1q merge/cancel paths.
            let mut c = Circuit::new(1);
            let base = random::random_circuit(2, gates, 0.0, seed);
            for g in base.gates() {
                c.push(g.map_qubits(|_| sabre_circuit::Qubit(0)));
            }
            c
        };
        let (optimized, report) = optimize(&circuit);
        prop_assert!(optimized.num_gates() <= circuit.num_gates());
        prop_assert_eq!(
            circuit.num_gates() - optimized.num_gates(),
            report.gates_removed()
        );
        prop_assert!(
            unitaries_equal(&circuit, &optimized, 1e-9).is_equivalent(),
            "optimizer changed the unitary"
        );
        // Idempotence: a second run finds nothing.
        let (again, second) = optimize(&optimized);
        prop_assert_eq!(again, optimized);
        prop_assert_eq!(second.gates_removed(), 0);
    }

    /// Optimizing a routed+decomposed circuit keeps it hardware-compliant
    /// and semantically faithful.
    #[test]
    fn optimizer_composes_with_routing(
        gates in 1usize..40,
        seed in any::<u64>(),
    ) {
        use sabre_circuit::optimize::optimize;
        let graph = devices::linear(5).graph().clone();
        let circuit = random::random_circuit(5, gates, 0.6, seed);
        let router = SabreRouter::new(graph.clone(), SabreConfig::fast()).unwrap();
        let routed = router.route(&circuit).unwrap().best;
        let (optimized, _) = optimize(&routed.decomposed());
        // Still compliant...
        for gate in optimized.gates() {
            if let (a, Some(b)) = gate.qubits() {
                prop_assert!(graph.are_coupled(a, b));
            }
        }
        // ...and still the same computation.
        prop_assert!(verify_semantics_small(
            &circuit,
            &optimized,
            routed.initial_layout.logical_to_physical(),
            routed.final_layout.logical_to_physical(),
        ).is_ok());
    }
}

/// Deterministic seeds produce identical routings (full pipeline).
#[test]
fn routing_is_reproducible() {
    let circuit = random::random_circuit(10, 80, 0.7, 99);
    let graph = devices::ibm_q20_tokyo().graph().clone();
    let a = SabreRouter::new(graph.clone(), SabreConfig::paper())
        .unwrap()
        .route(&circuit)
        .unwrap();
    let b = SabreRouter::new(graph, SabreConfig::paper())
        .unwrap()
        .route(&circuit)
        .unwrap();
    assert_eq!(a.best, b.best);
}

/// An empty circuit routes to an empty physical circuit on every device.
#[test]
fn empty_circuits_route_everywhere() {
    for device in devices::all_fixed_devices() {
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
        let result = router.route(&Circuit::new(1)).unwrap();
        assert!(result.best.physical.is_empty());
        assert_eq!(result.added_gates(), 0);
    }
}
