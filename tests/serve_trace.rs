//! End-to-end observability suite for `sabre-serve`: request tracing,
//! the routing-phase profiler, and the Prometheus exposition format.
//!
//! Pins this PR's acceptance criteria over real loopback HTTP:
//! - every response carries an `X-Request-Id`, echoed verbatim when the
//!   client supplies a valid one and replaced when it does not;
//! - `POST /route?profile=true` returns a `profile` object whose phase
//!   durations are positive and sum to the reported hot-loop time,
//!   bounded by the request's wall time;
//! - `GET /debug/traces` retains the request (newest first, bounded by
//!   `trace_capacity`) with every serving phase recorded;
//! - routing through the server — profiled or not — stays byte-identical
//!   to a direct `SabreRouter` call with the same seed;
//! - `GET /metrics` is well-formed Prometheus text line-by-line: legal
//!   metric names, `# TYPE` before samples, monotone histogram buckets.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;

mod common;
use common::{get_json, http, http_with_headers, post_json};

use sabre::{SabreConfig, SabreRouter};
use sabre_circuit::{Circuit, Qubit};
use sabre_json::JsonValue;
use sabre_qasm::to_qasm;
use sabre_serve::{start, ServeConfig, ServerHandle};
use sabre_topology::devices;
use sabre_trace::is_valid_trace_id;

/// Phases the reactor records for every worker-executed request.
const SERVING_PHASES: [&str; 7] = [
    "read",
    "parse",
    "admission",
    "queue_wait",
    "route",
    "serialize",
    "write",
];

fn server(config: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("start loopback server")
}

fn register(addr: SocketAddr, id: &str, builtin: &str) {
    let (status, _) = post_json(
        addr,
        "/devices",
        &JsonValue::object([("id", id.into()), ("builtin", builtin.into())]),
    );
    assert_eq!(status, 201, "registering {builtin}");
}

/// Deterministic CX workload (same generator family as `serve_http.rs`).
fn workload(n: u32, rounds: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for r in 0..rounds {
        let a = (r * 7 + 3) % n;
        let b = (r * 5 + 1) % n;
        if a != b {
            c.cx(Qubit(a), Qubit(b));
        }
    }
    c
}

fn route_body(device: &str, circuit: &Circuit, seed: u64) -> String {
    JsonValue::object([
        ("device", device.into()),
        (
            "circuit",
            JsonValue::object([("qasm", to_qasm(circuit).into())]),
        ),
        (
            "config",
            JsonValue::object([("seed", seed.into()), ("num_restarts", 1u64.into())]),
        ),
    ])
    .to_compact()
}

fn phase_map(trace: &JsonValue) -> HashMap<String, u64> {
    match trace.get("phases").expect("trace has phases") {
        JsonValue::Object(fields) => fields
            .iter()
            .map(|(k, v)| (k.clone(), v.as_u64().expect("phase duration is u64")))
            .collect(),
        other => panic!("phases is not an object: {other}"),
    }
}

/// Finds the `/debug/traces` entry with `trace_id == id`.
fn find_trace(addr: SocketAddr, id: &str) -> JsonValue {
    let (status, body) = get_json(addr, "/debug/traces");
    assert_eq!(status, 200);
    body.get("traces")
        .and_then(JsonValue::as_array)
        .expect("traces array")
        .iter()
        .find(|t| t.get("trace_id").and_then(JsonValue::as_str) == Some(id))
        .unwrap_or_else(|| panic!("trace {id} not retained: {body}"))
        .clone()
}

#[test]
fn profiled_route_echoes_trace_id_and_reports_phases() {
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");

    let circuit = workload(12, 80);
    let started = std::time::Instant::now();
    let (status, headers, text) = http(
        addr,
        "POST",
        "/route?profile=true",
        Some(&route_body("tokyo", &circuit, 7)),
    );
    let wall_ns = started.elapsed().as_nanos() as u64;
    assert_eq!(status, 200, "{text}");
    let id = headers
        .get("x-request-id")
        .expect("response carries X-Request-Id");
    assert!(is_valid_trace_id(id), "generated id is well-formed: {id}");

    // The profile rides the result: positive phase durations that sum to
    // the reported hot-loop total, all inside the request's wall time.
    let body = JsonValue::parse(&text).expect("JSON response");
    let profile = body
        .get("result")
        .and_then(|r| r.get("profile"))
        .unwrap_or_else(|| panic!("profiled route returns a profile: {body}"));
    let field = |name: &str| {
        profile
            .get(name)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("profile field {name}: {profile}"))
    };
    assert!(field("traversals") > 0);
    assert!(field("search_steps") > 0);
    assert!(field("candidates_scored") > 0);
    assert!(field("scoring_ns") > 0, "scoring ran: {profile}");
    let hot_loop = field("hot_loop_ns");
    assert!(hot_loop > 0);
    assert_eq!(
        field("front_ns") + field("extended_set_ns") + field("scoring_ns"),
        hot_loop,
        "phase durations sum to the hot-loop total"
    );
    assert!(
        hot_loop <= wall_ns,
        "hot loop ({hot_loop}ns) is bounded by request wall time ({wall_ns}ns)"
    );
    let steps: Vec<u64> = profile
        .get("per_traversal_steps")
        .and_then(JsonValue::as_array)
        .expect("per-traversal steps")
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(steps.len() as u64, field("traversals"));
    assert_eq!(steps.iter().sum::<u64>(), field("search_steps"));

    // The debug ring retained the request with every serving phase.
    let trace = find_trace(addr, id);
    assert_eq!(
        trace.get("target").and_then(JsonValue::as_str),
        Some("/route?profile=true")
    );
    assert_eq!(trace.get("status").and_then(JsonValue::as_u64), Some(200));
    let phases = phase_map(&trace);
    for phase in SERVING_PHASES {
        assert!(phases.contains_key(phase), "phase {phase} missing: {trace}");
    }
    assert!(phases["route"] > 0, "routing took measurable time");
    let total = trace
        .get("total_ns")
        .and_then(JsonValue::as_u64)
        .expect("total_ns");
    assert!(total > 0);
    assert!(
        phases.values().sum::<u64>() <= total,
        "phases are disjoint slices of the total: {trace}"
    );
}

#[test]
fn client_supplied_request_id_is_echoed_or_replaced() {
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");
    let body = route_body("tokyo", &workload(8, 30), 1);

    // A valid client ID is echoed verbatim and lands in the debug ring.
    let supplied = "client-req_42.A";
    let (status, headers, _) = http_with_headers(
        addr,
        "POST",
        "/route",
        &[("X-Request-Id", supplied)],
        Some(&body),
    );
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("x-request-id").map(String::as_str),
        Some(supplied)
    );
    let trace = find_trace(addr, supplied);
    assert_eq!(
        trace.get("method").and_then(JsonValue::as_str),
        Some("POST")
    );

    // Invalid IDs (bad charset, oversized) are replaced with a generated
    // one — never echoed, never truncated.
    let oversized = "a".repeat(65);
    for junk in ["bad!id", "semi;colon", oversized.as_str()] {
        let (status, headers, _) = http_with_headers(
            addr,
            "POST",
            "/route",
            &[("X-Request-Id", junk)],
            Some(&body),
        );
        assert_eq!(status, 200);
        let echoed = headers.get("x-request-id").expect("id present");
        assert_ne!(echoed.as_str(), junk, "invalid id `{junk}` is replaced");
        assert!(is_valid_trace_id(echoed));
    }
}

#[test]
fn debug_traces_ring_is_bounded_and_newest_first() {
    let handle = server(ServeConfig {
        trace_capacity: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    for path in ["/healthz?n=1", "/healthz?n=2", "/healthz?n=3"] {
        let (status, _, _) = http(addr, "GET", path, None);
        assert_eq!(status, 200);
    }
    let (status, body) = get_json(addr, "/debug/traces");
    assert_eq!(status, 200);
    assert_eq!(body.get("capacity").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(body.get("count").and_then(JsonValue::as_u64), Some(2));
    let targets: Vec<&str> = body
        .get("traces")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .map(|t| t.get("target").and_then(JsonValue::as_str).unwrap())
        .collect();
    assert_eq!(
        targets,
        vec!["/healthz?n=3", "/healthz?n=2"],
        "newest first, oldest evicted"
    );
}

#[test]
fn zero_trace_capacity_disables_retention() {
    let handle = server(ServeConfig {
        trace_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let (status, _, _) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let (status, body) = get_json(addr, "/debug/traces");
    assert_eq!(status, 200);
    assert_eq!(body.get("count").and_then(JsonValue::as_u64), Some(0));
    assert!(body
        .get("traces")
        .and_then(JsonValue::as_array)
        .unwrap()
        .is_empty());
}

#[test]
fn profiling_never_changes_the_routed_artifact() {
    // Acceptance: with profiling off the served output is byte-identical
    // to the direct engine; with profiling on the routed artifact is the
    // same bytes again, plus a profile.
    let handle = server(ServeConfig {
        plan_cache_capacity: 0, // exercise the full search on every call
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");
    let circuit = workload(14, 120);
    let seed = 2019;

    let direct = SabreRouter::new(
        devices::ibm_q20_tokyo().graph().clone(),
        SabreConfig {
            seed,
            num_restarts: 1,
            ..SabreConfig::default()
        },
    )
    .expect("build router")
    .route(&circuit)
    .expect("direct route");

    let body = route_body("tokyo", &circuit, seed);
    let (status, _, off_text) = http(addr, "POST", "/route", Some(&body));
    assert_eq!(status, 200);
    let (status, _, on_text) = http(addr, "POST", "/route?profile=true", Some(&body));
    assert_eq!(status, 200);

    let off = JsonValue::parse(&off_text).unwrap();
    let on = JsonValue::parse(&on_text).unwrap();
    let best = |v: &JsonValue| v.get("result").unwrap().get("best").unwrap().clone();
    assert_eq!(
        best(&off),
        direct.best.to_json(),
        "profile-off serving is byte-identical to the direct engine"
    );
    assert_eq!(
        best(&on),
        direct.best.to_json(),
        "profiling does not perturb the routed artifact"
    );
    assert!(off.get("result").unwrap().get("profile").is_none());
    assert!(on.get("result").unwrap().get("profile").is_some());
}

/// Line-by-line Prometheus exposition check: after serving a profiled
/// route, `/metrics` must parse as legal text — names in the allowed
/// charset, `# TYPE` declared before any sample of a family, histogram
/// buckets cumulative with `+Inf` last.
#[test]
fn metrics_exposition_is_well_formed() {
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");
    let (status, _, _) = http(
        addr,
        "POST",
        "/route?profile=true",
        Some(&route_body("tokyo", &workload(10, 60), 3)),
    );
    assert_eq!(status, 200);

    let (status, _, text) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);

    fn is_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    /// Base family name of a sample: `_bucket`/`_sum`/`_count` suffixes
    /// belong to the histogram family they decorate.
    fn family(name: &str) -> &str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                return base;
            }
        }
        name
    }

    let mut typed: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    // (family, label-set minus le) -> (last le bound, last cumulative count)
    let mut buckets: HashMap<(String, String), (f64, u64)> = HashMap::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap();
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment keyword: {line}"
            );
            let name = parts
                .next()
                .unwrap_or_else(|| panic!("bare comment: {line}"));
            assert!(is_name(name), "illegal metric name in comment: {line}");
            let payload = parts
                .next()
                .unwrap_or_else(|| panic!("empty {keyword}: {line}"));
            if keyword == "TYPE" {
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&payload),
                    "illegal TYPE: {line}"
                );
                assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
                types.insert(name.to_string(), payload.to_string());
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample without value: {line}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line}"));
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated label set: {line}"));
                (n, labels)
            }
            None => (name_and_labels, ""),
        };
        assert!(is_name(name), "illegal metric name: {line}");
        let base = family(name);
        assert!(
            typed.contains(base) || typed.contains(name),
            "sample before its TYPE line: {line}"
        );
        for label in labels.split(',').filter(|l| !l.is_empty()) {
            let (k, v) = label
                .split_once('=')
                .unwrap_or_else(|| panic!("malformed label: {line}"));
            assert!(is_name(k), "illegal label name: {line}");
            assert!(
                v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                "unquoted label value: {line}"
            );
        }
        // Histogram bucket discipline: within one family + label set,
        // `le` ascends and the cumulative count never decreases.
        if name.ends_with("_bucket") {
            assert_eq!(
                types.get(base).map(String::as_str),
                Some("histogram"),
                "_bucket outside a histogram: {line}"
            );
            let mut le = None;
            let mut others = Vec::new();
            for label in labels.split(',').filter(|l| !l.is_empty()) {
                let (k, v) = label.split_once('=').unwrap();
                let v = v.trim_matches('"');
                if k == "le" {
                    le = Some(if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse::<f64>()
                            .unwrap_or_else(|_| panic!("bad le bound: {line}"))
                    });
                } else {
                    others.push(label);
                }
            }
            let le = le.unwrap_or_else(|| panic!("bucket without le: {line}"));
            let count: u64 = value.parse().unwrap();
            let key = (base.to_string(), others.join(","));
            if let Some(&(prev_le, prev_count)) = buckets.get(&key) {
                assert!(le > prev_le, "le bounds not ascending: {line}");
                assert!(count >= prev_count, "bucket counts not cumulative: {line}");
            }
            buckets.insert(key, (le, count));
        }
    }

    // Every histogram family's label sets terminate at +Inf.
    for ((family, labels), (last_le, _)) in &buckets {
        assert!(
            last_le.is_infinite(),
            "histogram {family}{{{labels}}} does not end at +Inf"
        );
    }
    // The profiled route populated the labeled phase family.
    let phase_sets: HashSet<&String> = buckets
        .keys()
        .filter(|(f, _)| f == "sabre_serve_route_phase_ns")
        .map(|(_, labels)| labels)
        .collect();
    for phase in ["front", "extended_set", "scoring"] {
        let want = format!("phase=\"{phase}\"");
        assert!(
            phase_sets.iter().any(|l| l.contains(&want)),
            "route_phase_ns missing {want}: {phase_sets:?}"
        );
    }
}
