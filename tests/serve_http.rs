//! End-to-end loopback tests for `sabre-serve`: a real server on an
//! ephemeral port, real `TcpStream` clients, full HTTP round trips.
//!
//! These pin the PR's acceptance criteria:
//! - concurrent `/route` requests on a shared `DeviceCache` are
//!   **byte-identical** to direct `route_batch` calls for the same seeds;
//! - a full queue answers `503` with a `Retry-After` header;
//! - `POST /devices/{id}/noise` changes subsequent routing output without
//!   a restart;
//! - graceful shutdown drains every admitted job;
//! - HTTP/1.1 keep-alive serves multiple requests per connection, bounded
//!   by `max_requests_per_connection`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

mod common;
use common::{get_json, http, post_json};

use sabre::{SabreConfig, SabreRouter};
use sabre_circuit::{Circuit, Qubit};
use sabre_json::JsonValue;
use sabre_qasm::to_qasm;
use sabre_serve::{start, ServeConfig, ServerHandle};
use sabre_topology::devices;
use sabre_topology::noise::NoiseModel;

/// Registers a builtin device and asserts success.
fn register(addr: SocketAddr, id: &str, builtin: &str) {
    let (status, _) = post_json(
        addr,
        "/devices",
        &JsonValue::object([("id", id.into()), ("builtin", builtin.into())]),
    );
    assert_eq!(status, 201, "registering {builtin}");
}

/// Deterministic pseudo-random CX workload (same generator family as the
/// core crate's tests).
fn workload(n: u32, rounds: u32, stride: (u32, u32)) -> Circuit {
    let mut c = Circuit::new(n);
    for r in 0..rounds {
        let a = (r * stride.0 + 3) % n;
        let b = (r * stride.1 + 1) % n;
        if a != b {
            c.cx(Qubit(a), Qubit(b));
        }
    }
    c
}

/// `/route` request body for `circuit` on `device` with explicit config.
fn route_body(device: &str, circuit: &Circuit, config: &[(&str, JsonValue)]) -> JsonValue {
    JsonValue::object([
        ("device", device.into()),
        (
            "circuit",
            JsonValue::object([("qasm", to_qasm(circuit).into())]),
        ),
        (
            "config",
            JsonValue::object(config.iter().map(|(k, v)| (*k, v.clone()))),
        ),
    ])
}

/// Asserts a 200 `/route` response is byte-identical to a direct routing
/// result: same `best` JSON (layouts, counters, depth) and same physical
/// circuit QASM.
fn assert_matches_direct(response: &JsonValue, direct: &sabre::SabreResult) {
    assert_eq!(
        response.get("result").unwrap().get("best").unwrap(),
        &direct.best.to_json(),
        "routed artifact must be byte-identical to the direct call"
    );
    assert_eq!(
        response.get("physical_qasm").unwrap().as_str().unwrap(),
        to_qasm(&direct.best.physical),
    );
}

fn server(config: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("start loopback server")
}

/// Polls `/healthz` until the queue reaches `depth` (or panics after 30s).
fn wait_for_queue_depth(addr: SocketAddr, depth: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, health) = get_json(addr, "/healthz");
        assert_eq!(status, 200);
        if health.get("queue_depth").unwrap().as_usize() == Some(depth) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "queue never reached depth {depth}: {health}"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

/// Polls `/metrics` until `name` reaches `target` (or panics after 30s).
fn wait_for_metric(addr: SocketAddr, name: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, text) = http(addr, "GET", "/metrics", None);
        assert_eq!(status, 200);
        let value: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .parse()
            .unwrap();
        if value >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{name} stuck at {value}, wanted {target}"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn concurrent_routes_are_byte_identical_to_direct_route_batch() {
    let handle = server(ServeConfig {
        workers: 4,
        // The plan-cache key deliberately ignores `seed` (any cached plan
        // is a valid routing of the structure), but this test pins strict
        // per-request seed sensitivity — so it runs with the cache off.
        plan_cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");

    let circuits: Vec<Circuit> = (0..6).map(|i| workload(12, 60 + 15 * i, (5, 7))).collect();
    let graph = devices::ibm_q20_tokyo().graph().clone();
    let config = SabreConfig::default();
    let router = SabreRouter::new(graph.clone(), config).unwrap();
    let direct = router.route_batch(&circuits);

    // All six requests in flight at once, against the shared DeviceCache.
    let clients: Vec<_> = circuits
        .iter()
        .map(|circuit| {
            let body = route_body("tokyo", circuit, &[("seed", config.seed.into())]);
            thread::spawn(move || post_json(addr, "/route", &body))
        })
        .collect();
    for (client, direct) in clients.into_iter().zip(&direct) {
        let (status, response) = client.join().unwrap();
        assert_eq!(status, 200, "{response}");
        assert_matches_direct(&response, direct.as_ref().unwrap());
        assert_eq!(response.get("noise_aware").unwrap().as_bool(), Some(false));
    }

    // Distinct per-request seeds match distinct direct routers.
    for seed in [7u64, 4242] {
        let (status, response) = post_json(
            addr,
            "/route",
            &route_body("tokyo", &circuits[0], &[("seed", seed.into())]),
        );
        assert_eq!(status, 200);
        let direct = SabreRouter::new(graph.clone(), SabreConfig { seed, ..config })
            .unwrap()
            .route(&circuits[0])
            .unwrap();
        assert_matches_direct(&response, &direct);
    }
    handle.shutdown();
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    // A frozen pool (workers = 0) makes backpressure deterministic: jobs
    // are admitted but never popped.
    let handle = server(ServeConfig {
        workers: 0,
        queue_capacity: 2,
        retry_after_secs: 7,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "line", "linear:4");

    let body = route_body("line", &workload(4, 10, (3, 2)), &[("trials", 1u64.into())]);
    let blocked: Vec<_> = (0..2)
        .map(|_| {
            let body = body.clone();
            thread::spawn(move || post_json(addr, "/route", &body))
        })
        .collect();
    wait_for_queue_depth(addr, 2);

    // Third request: queue full → immediate 503 + Retry-After.
    let (status, headers, text) = http(addr, "POST", "/route", Some(&body.to_compact()));
    assert_eq!(status, 503);
    assert_eq!(headers.get("retry-after").map(String::as_str), Some("7"));
    let error = JsonValue::parse(&text).unwrap();
    assert!(
        error
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("full"),
        "{text}"
    );

    // Aborting fails the two admitted jobs with 503 too — no client hangs.
    handle.shutdown_now();
    for client in blocked {
        let (status, response) = client.join().unwrap();
        assert_eq!(status, 503);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("shutting down"));
    }
}

#[test]
fn graceful_shutdown_drains_admitted_jobs() {
    let handle = server(ServeConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");

    // One heavy circuit occupies the single worker while the rest queue.
    let circuits: Vec<Circuit> = std::iter::once(workload(16, 800, (5, 7)))
        .chain((0..4).map(|i| workload(10, 40 + 10 * i, (3, 5))))
        .collect();
    let config = SabreConfig::default();
    let router = SabreRouter::new(devices::ibm_q20_tokyo().graph().clone(), config).unwrap();
    let direct = router.route_batch(&circuits);

    let clients: Vec<_> = circuits
        .iter()
        .map(|circuit| {
            let body = route_body("tokyo", circuit, &[("seed", config.seed.into())]);
            thread::spawn(move || post_json(addr, "/route", &body))
        })
        .collect();
    // Wait until all five jobs are *admitted* (accepted into the queue).
    // Shutting down earlier would race a straggler client against the
    // closing queue; once admitted, the drain guarantee owns them.
    wait_for_metric(
        addr,
        "sabre_serve_jobs_admitted_total",
        circuits.len() as u64,
    );

    // Graceful: every admitted job still gets its real, correct response.
    handle.shutdown();
    for (client, direct) in clients.into_iter().zip(&direct) {
        let (status, response) = client.join().unwrap();
        assert_eq!(status, 200, "drained job must succeed: {response}");
        assert_matches_direct(&response, direct.as_ref().unwrap());
    }
}

#[test]
fn noise_refresh_changes_routing_without_restart() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "ring", "ring:6");
    let graph = devices::ring(6).graph().clone();

    let mut circuit = Circuit::new(6);
    for _ in 0..3 {
        circuit.cx(Qubit(0), Qubit(3));
        circuit.cx(Qubit(1), Qubit(4));
        circuit.cx(Qubit(2), Qubit(5));
    }
    let config = [
        ("trials", JsonValue::from(1u64)),
        ("num_traversals", 1u64.into()),
        ("probe_budget", 0u64.into()),
    ];
    let sabre_config = SabreConfig {
        num_restarts: 1,
        num_traversals: 1,
        embedding_probe_budget: 0,
        ..SabreConfig::default()
    };

    let (status, before) = post_json(addr, "/route", &route_body("ring", &circuit, &config));
    assert_eq!(status, 200);
    let direct_before = SabreRouter::new(graph.clone(), sabre_config)
        .unwrap()
        .route(&circuit)
        .unwrap();
    assert_matches_direct(&before, &direct_before);

    // New calibration: one side of the ring becomes terrible.
    let noise_spec = JsonValue::object([
        ("two_qubit_error", 0.001.into()),
        ("single_qubit_error", 0.0001.into()),
        (
            "edges",
            JsonValue::array([
                JsonValue::array([0u64.into(), 1u64.into(), 0.4.into()]),
                JsonValue::array([1u64.into(), 2u64.into(), 0.4.into()]),
                JsonValue::array([2u64.into(), 3u64.into(), 0.4.into()]),
            ]),
        ),
    ]);
    let (status, refreshed) = post_json(addr, "/devices/ring/noise", &noise_spec);
    assert_eq!(status, 200, "{refreshed}");
    assert!(refreshed
        .get("noise_fingerprint")
        .unwrap()
        .as_u64()
        .is_some());

    // Same request, same process — different routing.
    let (status, after) = post_json(addr, "/route", &route_body("ring", &circuit, &config));
    assert_eq!(status, 200);
    assert_eq!(after.get("noise_aware").unwrap().as_bool(), Some(true));
    assert_ne!(
        before.get("result").unwrap().get("best").unwrap(),
        after.get("result").unwrap().get("best").unwrap(),
        "the refreshed calibration must change the routing output"
    );

    // And it matches the direct noise-aware router bit for bit.
    let noise = NoiseModel::uniform(&graph, 0.001, 0.0001)
        .with_edge_error(Qubit(0), Qubit(1), 0.4)
        .with_edge_error(Qubit(1), Qubit(2), 0.4)
        .with_edge_error(Qubit(2), Qubit(3), 0.4);
    let direct_after = SabreRouter::with_noise(graph.clone(), sabre_config, &noise)
        .unwrap()
        .route(&circuit)
        .unwrap();
    assert_matches_direct(&after, &direct_after);

    // Per-request opt-out returns to hop-based routing.
    let mut body = route_body("ring", &circuit, &config);
    if let JsonValue::Object(pairs) = &mut body {
        pairs.push(("ignore_noise".into(), true.into()));
    }
    let (status, hops) = post_json(addr, "/route", &body);
    assert_eq!(status, 200);
    assert_eq!(
        hops.get("result").unwrap().get("best").unwrap(),
        before.get("result").unwrap().get("best").unwrap(),
    );
    handle.shutdown();
}

#[test]
fn api_validation_and_partial_success_batches() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "line", "linear:4");

    // Path/method errors.
    let (status, _, _) = http(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = http(addr, "DELETE", "/route", None);
    assert_eq!(status, 405);

    // Body errors.
    let (status, _, text) = http(addr, "POST", "/route", Some("{not json"));
    assert_eq!(status, 400, "{text}");
    let (status, response) = post_json(
        addr,
        "/route",
        &route_body("ghost", &workload(3, 4, (2, 1)), &[]),
    );
    assert_eq!(status, 404);
    assert!(response
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("register"));
    let (status, response) = post_json(
        addr,
        "/route",
        &JsonValue::object([
            ("device", "line".into()),
            ("circuit", JsonValue::object([("qasm", "not qasm".into())])),
        ]),
    );
    assert_eq!(status, 400);
    assert!(response
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("OpenQASM"));
    let (status, response) = post_json(
        addr,
        "/route",
        &route_body("line", &workload(3, 4, (2, 1)), &[("tirals", 3u64.into())]),
    );
    assert_eq!(status, 400);
    assert!(response
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("tirals"));

    // Partial-success batch: the oversized slot fails, the others route.
    let circuits = JsonValue::array([
        JsonValue::object([("qasm", to_qasm(&workload(4, 12, (3, 2))).into())]),
        JsonValue::object([("qasm", to_qasm(&workload(6, 12, (3, 2))).into())]),
        JsonValue::object([("qasm", to_qasm(&workload(3, 6, (2, 1))).into())]),
    ]);
    let (status, response) = post_json(
        addr,
        "/transpile_batch",
        &JsonValue::object([("device", "line".into()), ("circuits", circuits)]),
    );
    assert_eq!(status, 200, "{response}");
    assert_eq!(response.get("succeeded").unwrap().as_usize(), Some(2));
    assert_eq!(response.get("failed").unwrap().as_usize(), Some(1));
    let outcomes = response.get("outcomes").unwrap().as_array().unwrap();
    assert!(outcomes[0]
        .get("ok")
        .unwrap()
        .get("swaps_inserted")
        .is_some());
    assert!(outcomes[1]
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("qubits"));
    assert!(outcomes[2].get("ok").is_some());

    // Re-registration replaces (200), first registration created (201).
    let reg = JsonValue::object([("id", "line".into()), ("builtin", "linear:4".into())]);
    let (status, _) = post_json(addr, "/devices", &reg);
    assert_eq!(status, 200);
    let (status, listed) = get_json(addr, "/devices");
    assert_eq!(status, 200);
    let devices = listed.get("devices").unwrap().as_array().unwrap();
    assert_eq!(devices.len(), 1);
    assert_eq!(devices[0].get("id").unwrap().as_str(), Some("line"));

    handle.shutdown();
}

/// Sends one request on an already-open stream and reads exactly one
/// response (keep-alive aware: reads the body by `Content-Length`
/// instead of waiting for EOF). Returns status, headers, body.
fn keep_alive_round_trip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, String) {
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: loopback\r\n");
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes()).unwrap();

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before a complete response head");
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(raw[..header_end].to_vec()).unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: HashMap<String, String> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .get("content-length")
        .expect("Content-Length header")
        .parse()
        .unwrap();
    let mut body = raw[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(body.len(), content_length, "no stray bytes past the body");
    (status, headers, String::from_utf8(body).unwrap())
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "line", "linear:4");

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();

    // Three requests — health probe, a real routing job, another probe —
    // all over the same TCP connection.
    let (status, headers, _) = keep_alive_round_trip(&mut stream, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("connection").map(String::as_str),
        Some("keep-alive")
    );

    let body = route_body("line", &workload(4, 10, (3, 2)), &[("trials", 1u64.into())]);
    let (status, headers, text) =
        keep_alive_round_trip(&mut stream, "POST", "/route", Some(&body.to_compact()));
    assert_eq!(status, 200, "{text}");
    assert_eq!(
        headers.get("connection").map(String::as_str),
        Some("keep-alive")
    );
    let response = JsonValue::parse(&text).unwrap();
    assert!(response.get("result").is_some());

    let (status, _, _) = keep_alive_round_trip(&mut stream, "GET", "/healthz", None);
    assert_eq!(status, 200);

    // An explicit `Connection: close` is honored: response says close
    // and the server hangs up.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    let text = String::from_utf8(rest).unwrap();
    assert!(text.contains("Connection: close"), "{text}");

    drop(stream);
    handle.shutdown();
}

#[test]
fn keep_alive_is_bounded_by_the_per_connection_cap() {
    let handle = server(ServeConfig {
        workers: 1,
        max_requests_per_connection: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let (status, headers, _) = keep_alive_round_trip(&mut stream, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("connection").map(String::as_str),
        Some("keep-alive")
    );
    // Request #2 hits the cap: the server answers but announces close.
    let (status, headers, _) = keep_alive_round_trip(&mut stream, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
    // The connection really is gone: a third request gets EOF.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: loopback\r\n\r\n")
        .unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after the cap");

    drop(stream);
    handle.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Two pipelined requests in one write; both answered, in order.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: l\r\n\r\n\
              GET /metrics HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let first = text.find("HTTP/1.1 200").expect("first response");
    let second = text[first + 1..]
        .find("HTTP/1.1 200")
        .expect("second response");
    assert!(text.contains("\"status\":\"ok\""), "healthz answered");
    assert!(
        text[first + second..].contains("sabre_serve_requests_total"),
        "metrics answered second"
    );
    handle.shutdown();
}

#[test]
fn oversized_bodies_get_413() {
    let handle = server(ServeConfig {
        workers: 1,
        max_body_bytes: 200,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let big = "x".repeat(1000);
    let (status, _, text) = http(addr, "POST", "/route", Some(&big));
    assert_eq!(status, 413, "{text}");
    handle.shutdown();
}

#[test]
fn metrics_expose_per_step_routing_telemetry() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "line", "linear:4");

    let (_, _, before) = http(addr, "GET", "/metrics", None);
    assert!(before.contains("sabre_serve_routing_steps_total 0"));

    // cx(0,3) on a 4-line needs SWAPs, so search steps are guaranteed.
    let mut circuit = Circuit::new(4);
    circuit.cx(Qubit(0), Qubit(3));
    let (status, response) = post_json(
        addr,
        "/route",
        &route_body("line", &circuit, &[("trials", 1u64.into())]),
    );
    assert_eq!(status, 200);
    let steps = response
        .get("result")
        .unwrap()
        .get("total_search_steps")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(steps >= 1);

    let (status, _, after) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let metric = |name: &str| -> u64 {
        after
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("metric {name} missing:\n{after}"))
            .parse()
            .unwrap()
    };
    assert_eq!(metric("sabre_serve_routing_steps_total"), steps);
    assert!(metric("sabre_serve_routing_ns_total") > 0);
    assert!(metric("sabre_serve_last_route_ns_per_step") > 0);
    assert!(metric("sabre_serve_avg_route_ns_per_step") > 0);
    assert_eq!(metric("sabre_serve_jobs_completed_total"), 1);
    assert_eq!(metric("sabre_serve_queue_depth"), 0);
    assert!(after.contains("sabre_serve_requests_total{endpoint=\"route\"} 1"));
    assert!(after.contains("sabre_serve_cache_graph_hits_total"));
    // Reactor + admission telemetry. This very request is being served
    // over an open connection, so the gauge is live.
    assert!(metric("sabre_serve_open_connections") >= 1);
    assert!(metric("sabre_serve_max_connections") >= 1);
    for reason in ["read_deadline", "write_deadline", "idle"] {
        assert!(
            after.contains(&format!(
                "sabre_serve_connections_reaped_total{{reason=\"{reason}\"}}"
            )),
            "missing reap reason {reason}:\n{after}"
        );
    }
    for kind in ["queue_full", "rate_limited", "predicted_slo", "table_full"] {
        assert!(
            after.contains(&format!(
                "sabre_serve_admission_rejections_total{{kind=\"{kind}\"}}"
            )),
            "missing rejection kind {kind}:\n{after}"
        );
    }
    // The priced /route above observed its predicted wait.
    assert!(metric("sabre_serve_admission_predicted_wait_ms_count") >= 1);
    assert!(after.contains("sabre_serve_admission_predicted_wait_ms_bucket{le=\"+Inf\"}"));
    // Plan-cache telemetry: the first submission of this structure was a
    // lookup miss, then the routed plan was cached.
    assert_eq!(metric("sabre_serve_plan_cache_misses_total"), 1);
    assert_eq!(metric("sabre_serve_plan_cache_hits_total"), 0);
    assert_eq!(metric("sabre_serve_plan_cache_entries"), 1);
    assert!(metric("sabre_serve_plan_cache_approx_bytes") > 0);
    assert_eq!(metric("sabre_serve_plan_cache_evictions_total"), 0);
    assert_eq!(metric("sabre_serve_rebind_ns_count"), 0);

    // Resubmitting the same structure with different angles is a hit:
    // answered inline (no new job), zero search steps, rebind observed.
    let mut rebound = Circuit::new(4);
    rebound.cx(Qubit(0), Qubit(3));
    rebound.rz(Qubit(1), 0.625);
    // Different structure (extra rz) — still a miss. Then resubmit the
    // *original* structure, which must hit.
    let (status, _) = post_json(
        addr,
        "/route",
        &route_body("line", &rebound, &[("trials", 1u64.into())]),
    );
    assert_eq!(status, 200);
    let (status, hit) = post_json(
        addr,
        "/route",
        &route_body("line", &circuit, &[("trials", 1u64.into())]),
    );
    assert_eq!(status, 200);
    assert_eq!(hit.get("plan_cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        hit.get("result")
            .unwrap()
            .get("total_search_steps")
            .unwrap()
            .as_u64(),
        Some(0),
        "a plan-cache hit must run zero search steps"
    );
    let (_, _, third) = http(addr, "GET", "/metrics", None);
    let metric = |name: &str| -> u64 {
        third
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("metric {name} missing:\n{third}"))
            .parse()
            .unwrap()
    };
    assert_eq!(metric("sabre_serve_plan_cache_hits_total"), 1);
    assert_eq!(metric("sabre_serve_plan_cache_misses_total"), 2);
    assert_eq!(metric("sabre_serve_plan_cache_entries"), 2);
    assert_eq!(metric("sabre_serve_plan_cache_inline_hits_total"), 1);
    assert_eq!(metric("sabre_serve_rebind_ns_count"), 1);
    // The hit bypassed the queue: still exactly two worker jobs ran.
    assert_eq!(metric("sabre_serve_jobs_completed_total"), 2);

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("workers").unwrap().as_usize(), Some(1));
    handle.shutdown();
}

#[test]
fn plan_cache_hit_rebinds_fresh_parameters_bit_identically() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");
    let graph = devices::ibm_q20_tokyo().graph().clone();

    // A VQA-shaped ansatz: parameterized rotation layers between a fixed
    // entangler. Every submission below shares this structure; only the
    // angles move.
    let ansatz = |theta: f64| {
        let mut c = Circuit::new(8);
        for layer in 0..3 {
            for q in 0..8u32 {
                c.rz(Qubit(q), theta * f64::from(layer * 8 + q + 1));
            }
            for q in 0..7u32 {
                c.cx(Qubit(q), Qubit(q + 1));
            }
            c.cx(Qubit(0), Qubit(7));
        }
        c
    };

    let (status, first) = post_json(addr, "/route", &route_body("tokyo", &ansatz(0.3), &[]));
    assert_eq!(status, 200, "{first}");
    assert_eq!(first.get("plan_cache").unwrap().as_str(), Some("miss"));

    let (status, second) = post_json(addr, "/route", &route_body("tokyo", &ansatz(1.7), &[]));
    assert_eq!(status, 200, "{second}");
    assert_eq!(second.get("plan_cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        second
            .get("result")
            .unwrap()
            .get("total_search_steps")
            .unwrap()
            .as_u64(),
        Some(0),
        "a hit is served by re-binding, not by searching"
    );

    // The rebound answer is byte-identical to what a fresh route of the
    // re-parameterized circuit would have produced (routing decisions
    // never read gate parameters).
    let direct = SabreRouter::new(graph, SabreConfig::default())
        .unwrap()
        .route(&ansatz(1.7))
        .unwrap();
    assert_matches_direct(&second, &direct);
    handle.shutdown();
}

/// Kilo-qubit registration regression: `grid:40x40` (1600 qubits) clears
/// the raised cap, registers through the sparse distance engine (the
/// response advertises `"distance": "sparse"`, meaning no `O(N²)` matrix
/// was allocated during cache warm-up), registers fast, and then serves
/// a routing request. A small device must keep reporting `"dense"`.
#[test]
fn kilo_qubit_registration_uses_the_sparse_engine() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let start = Instant::now();
    let (status, response) = post_json(
        addr,
        "/devices",
        &JsonValue::object([("id", "kilo".into()), ("builtin", "grid:40x40".into())]),
    );
    assert_eq!(status, 201, "{response}");
    assert_eq!(response.get("num_qubits").unwrap().as_u64(), Some(1600));
    assert_eq!(response.get("distance").unwrap().as_str(), Some("sparse"));
    // Dense preprocessing at this size is an O(N³) sweep over a 20 MB
    // matrix pair — seconds of work. The sparse path is O(N + E).
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "kilo-qubit registration took {:?}",
        start.elapsed()
    );

    register(addr, "small", "tokyo20");
    let (status, listing) = get_json(addr, "/devices");
    assert_eq!(status, 200);
    let devices = listing.get("devices").unwrap().as_array().unwrap();
    let engine_of = |id: &str| {
        devices
            .iter()
            .find(|d| d.get("id").and_then(JsonValue::as_str) == Some(id))
            .and_then(|d| d.get("distance"))
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    };
    assert_eq!(engine_of("kilo").as_deref(), Some("sparse"));
    assert_eq!(engine_of("small").as_deref(), Some("dense"));

    // The registered kilo-qubit device actually routes.
    let (status, response) = post_json(
        addr,
        "/route",
        &route_body(
            "kilo",
            &workload(64, 120, (5, 7)),
            &[("num_restarts", 1u64.into())],
        ),
    );
    assert_eq!(status, 200, "{response}");
    assert!(
        response.get("result").and_then(|r| r.get("best")).is_some(),
        "{response}"
    );
    handle.shutdown();
}
