//! Integration suite for the routed-plan cache (`sabre::PlanCache`):
//! route a VQA ansatz **once**, then serve every re-parameterization by
//! re-binding the cached plan.
//!
//! Contracts pinned here:
//! - a cache hit is **bit-identical** to a fresh route of the
//!   re-parameterized circuit, across device families, seeds, and
//!   noise-weighted routing (routing decisions never read gate
//!   parameters);
//! - a hit performs **zero search steps** (`total_search_steps() == 0`);
//! - re-binding is at least **50× cheaper** than routing on a deep-grid
//!   ansatz — the serving economics the cache exists for;
//! - every randomly re-bound circuit still passes full routing
//!   verification (`sabre_verify::verify_routed`);
//! - the structural fingerprint keys correctly: angle changes hit,
//!   structure changes miss.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use sabre::{PlanCache, SabreConfig, SabreRouter};
use sabre_circuit::{Circuit, Qubit};
use sabre_topology::noise::NoiseModel;
use sabre_topology::{devices, CouplingGraph};
use sabre_verify::verify_routed;

/// A VQA-shaped ansatz: `layers` rounds of parameterized rotations
/// followed by a fixed entangler (nearest-neighbour ladder plus a wrap
/// link so the interaction graph never embeds trivially). Any two calls
/// with the same `(n, layers)` share a structure; `theta` only moves the
/// angles.
fn ansatz(n: u32, layers: u32, theta: f64) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            c.rz(Qubit(q), theta * f64::from(layer * n + q + 1));
        }
        for q in 0..n - 1 {
            c.cx(Qubit(q), Qubit(q + 1));
        }
        c.cx(Qubit(0), Qubit(n - 1));
    }
    c
}

/// Routes `base`, caches the plan, then asserts every `thetas` variant
/// served from the cache is bit-identical to a fresh route and runs
/// zero search steps.
fn assert_rebinds_match_fresh_routes(
    graph: &CouplingGraph,
    noise: Option<&NoiseModel>,
    config: SabreConfig,
    n: u32,
    label: &str,
) {
    let router = match noise {
        Some(noise) => SabreRouter::with_noise(graph.clone(), config, noise),
        None => SabreRouter::new(graph.clone(), config),
    }
    .unwrap_or_else(|e| panic!("router for {label}: {e}"));
    let cache = PlanCache::with_capacity(16);

    let base = ansatz(n, 3, 0.4);
    let routed = router.route(&base).unwrap();
    cache.insert(&base, graph, noise, &config, &routed);

    for theta in [1.1f64, 2.7, -0.9] {
        let variant = ansatz(n, 3, theta);
        let hit = cache
            .lookup(&variant, graph, noise, &config)
            .unwrap_or_else(|| panic!("{label}: same structure must hit"));
        assert_eq!(
            hit.total_search_steps(),
            0,
            "{label}: a hit must not search"
        );
        let fresh = router.route(&variant).unwrap();
        assert_eq!(
            hit.best, fresh.best,
            "{label}/theta={theta}: rebind must be bit-identical to a fresh route"
        );
    }
}

#[test]
fn rebind_matches_fresh_routes_across_devices_seeds_and_noise() {
    let families: Vec<(&str, CouplingGraph)> = vec![
        ("tokyo20", devices::ibm_q20_tokyo().graph().clone()),
        ("grid4x5", devices::grid(4, 5).graph().clone()),
        ("heavy_hex2x3", devices::heavy_hex(2, 3).graph().clone()),
    ];
    for (name, graph) in families {
        let n = graph.num_qubits().clamp(4, 8);
        for seed in [0u64, 7, 2019] {
            let config = SabreConfig {
                seed,
                ..SabreConfig::fast()
            };
            assert_rebinds_match_fresh_routes(
                &graph,
                None,
                config,
                n,
                &format!("{name}/seed={seed}"),
            );
        }
        // Noise-weighted routing: the calibration participates in the
        // plan key and the rebound plan must match the noise-aware
        // fresh route exactly.
        let noise = NoiseModel::calibrated(&graph, 0.02, 4.0, 11);
        assert_rebinds_match_fresh_routes(
            &graph,
            Some(&noise),
            SabreConfig::fast(),
            n,
            &format!("{name}/noise"),
        );
    }
}

#[test]
fn rebind_is_at_least_50x_cheaper_than_routing() {
    // The ISSUE's serving-economics bound, on the deep-grid shape the
    // perf trajectory records: one route pays the SWAP search; a rebind
    // is a clone plus a parameter stamp.
    let graph = devices::grid(6, 6).graph().clone();
    let config = SabreConfig::fast();
    let router = SabreRouter::new(graph.clone(), config).unwrap();
    let cache = PlanCache::with_capacity(4);

    let deep = ansatz(36, 24, 0.3);
    let median = |mut samples: Vec<Duration>| -> Duration {
        samples.sort();
        samples[samples.len() / 2]
    };

    let mut route_times = Vec::new();
    let mut seeded = None;
    for _ in 0..3 {
        let start = Instant::now();
        let routed = router.route(&deep).unwrap();
        route_times.push(start.elapsed());
        seeded.get_or_insert(routed);
    }
    cache.insert(&deep, &graph, None, &config, &seeded.unwrap());

    let mut rebind_times = Vec::new();
    for i in 0..50 {
        let variant = ansatz(36, 24, 0.5 + 0.01 * f64::from(i));
        let start = Instant::now();
        let hit = cache
            .lookup(&variant, &graph, None, &config)
            .expect("deep ansatz variant must hit");
        rebind_times.push(start.elapsed());
        assert_eq!(hit.total_search_steps(), 0);
    }

    let route = median(route_times);
    let rebind = median(rebind_times).max(Duration::from_nanos(1));
    let ratio = route.as_nanos() / rebind.as_nanos();
    assert!(
        ratio >= 50,
        "rebind must be ≥50× cheaper than routing: route {route:?} vs rebind {rebind:?} ({ratio}×)"
    );
}

#[test]
fn structural_fingerprint_keys_hits_and_misses() {
    let graph = devices::ibm_q20_tokyo().graph().clone();
    let config = SabreConfig::fast();
    let router = SabreRouter::new(graph.clone(), config).unwrap();
    let cache = PlanCache::with_capacity(8);

    let base = ansatz(8, 2, 0.25);
    let routed = router.route(&base).unwrap();
    cache.insert(&base, &graph, None, &config, &routed);

    // Same structure, different angles: hit.
    assert!(cache
        .lookup(&ansatz(8, 2, 9.75), &graph, None, &config)
        .is_some());
    // Different structure (extra layer): miss.
    assert!(cache
        .lookup(&ansatz(8, 3, 0.25), &graph, None, &config)
        .is_none());
    // Different structure (different register width): miss.
    assert!(cache
        .lookup(&ansatz(9, 2, 0.25), &graph, None, &config)
        .is_none());
    let stats = cache.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.entries, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random re-parameterization served from the cache is a valid
    /// routing of the re-parameterized circuit: coupling-compliant,
    /// layout-consistent, and gate-for-gate faithful under
    /// `sabre_verify`'s replay check.
    #[test]
    fn random_rebinds_always_verify(
        theta_base in -3.15f64..3.15,
        theta_variant in -3.15f64..3.15,
        seed in any::<u64>(),
    ) {
        let graph = devices::ibm_q20_tokyo().graph().clone();
        let config = SabreConfig { seed, ..SabreConfig::fast() };
        let router = SabreRouter::new(graph.clone(), config).unwrap();
        let cache = PlanCache::with_capacity(4);

        let base = ansatz(10, 2, theta_base);
        let routed = router.route(&base).unwrap();
        cache.insert(&base, &graph, None, &config, &routed);

        let variant = ansatz(10, 2, theta_variant);
        let hit = cache
            .lookup(&variant, &graph, None, &config)
            .expect("same structure must hit");
        prop_assert_eq!(hit.total_search_steps(), 0);
        verify_routed(
            &variant,
            &hit.best.physical,
            hit.best.initial_layout.logical_to_physical(),
            hit.best.final_layout.logical_to_physical(),
            &graph,
        )
        .unwrap_or_else(|e| panic!("rebound circuit failed verification: {e}"));
    }
}
