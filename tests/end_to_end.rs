//! End-to-end integration: benchmark registry → SABRE → verification.

use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::registry::{self, Category};
use sabre_topology::devices;
use sabre_verify::{verify_routed, verify_semantics_small};

/// Route every non-huge Table II benchmark with the paper configuration
/// and verify the output with the permutation replay.
#[test]
fn registry_benchmarks_route_and_verify() {
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    for spec in registry::table2() {
        if spec.paper.g_ori > 1200 {
            continue; // the giant rows run in the bench harness, not tests
        }
        let circuit = spec.generate();
        let result = router.route(&circuit).unwrap();
        let routed = &result.best;
        verify_routed(
            &circuit,
            &routed.physical,
            routed.initial_layout.logical_to_physical(),
            routed.final_layout.logical_to_physical(),
            device.graph(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(routed.forced_routings, 0, "{}", spec.name);
        assert_eq!(
            routed.physical.num_gates(),
            circuit.num_gates() + routed.num_swaps,
            "{}",
            spec.name
        );
    }
}

/// The small benchmarks additionally pass full state-vector equivalence.
#[test]
fn small_benchmarks_are_semantically_preserved() {
    // A 5-qubit circuit on the 20-qubit Tokyo would need 2^20 amplitudes;
    // use the 5-qubit IBM QX2 device so simulation is instant while the
    // routing is still nontrivial (QX2 is sparse).
    let device = devices::ibm_qx2();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    for spec in registry::table2() {
        if spec.category != Category::Small {
            continue;
        }
        let circuit = spec.generate();
        let result = router.route(&circuit).unwrap();
        let routed = &result.best;
        verify_semantics_small(
            &circuit,
            &routed.physical,
            routed.initial_layout.logical_to_physical(),
            routed.final_layout.logical_to_physical(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

/// Ising chains get perfect mappings (paper §V-A1, Table II `g_op = 0`).
#[test]
fn ising_rows_reach_zero_added_gates() {
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    for spec in registry::table2() {
        if spec.category != Category::Sim {
            continue;
        }
        let result = router.route(&spec.generate()).unwrap();
        assert_eq!(result.added_gates(), 0, "{}", spec.name);
    }
}

/// g_op ≤ g_la: the bidirectional pipeline never reports worse than its
/// best first traversal.
#[test]
fn reverse_traversal_only_improves_reported_results() {
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    for name in ["qft_10", "qft_13", "rd84_142"] {
        let spec = registry::by_name(name).unwrap();
        let result = router.route(&spec.generate()).unwrap();
        assert!(
            result.added_gates() <= result.first_traversal_added_gates,
            "{name}: g_op={} > g_la={}",
            result.added_gates(),
            result.first_traversal_added_gates
        );
    }
}

/// The same router instance works across devices of the zoo — the
/// flexibility objective (§III-B).
#[test]
fn flexibility_across_device_zoo() {
    let spec = registry::by_name("qft_10").unwrap();
    let circuit = spec.generate();
    for device in [
        devices::ibm_q20_tokyo(),
        devices::ibm_qx5(),
        devices::ibm_falcon_27(),
        devices::grid(4, 5),
        devices::ring(12),
        devices::linear(10),
        devices::star(11),
    ] {
        let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
        let result = router.route(&circuit).unwrap();
        verify_routed(
            &circuit,
            &result.best.physical,
            result.best.initial_layout.logical_to_physical(),
            result.best.final_layout.logical_to_physical(),
            device.graph(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", device.name()));
    }
}
