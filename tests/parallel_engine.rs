//! Workspace-level contract tests for the rayon-parallel multi-seed
//! engine (`sabre::parallel`): parallel output must be bit-identical to
//! the sequential path, and batch APIs must produce verified, ordered
//! results.

use proptest::prelude::*;
use sabre::{transpile_batch, SabreConfig, SabreResult, SabreRouter, TranspileOptions};
use sabre_benchgen::{qft, random};
use sabre_circuit::Circuit;
use sabre_topology::devices;
use sabre_verify::{verify_routed, verify_semantics_small};

/// The deterministic fields of two results must agree exactly; `elapsed`
/// is wall-clock and deliberately excluded.
fn assert_same_result(label: &str, a: &SabreResult, b: &SabreResult) {
    assert_eq!(a.best, b.best, "{label}: best routing diverged");
    assert_eq!(a.best_restart, b.best_restart, "{label}: best_restart");
    assert_eq!(
        a.perfect_placement, b.perfect_placement,
        "{label}: perfect_placement"
    );
    assert_eq!(a.traversals, b.traversals, "{label}: traversal telemetry");
    assert_eq!(
        a.first_traversal_added_gates, b.first_traversal_added_gates,
        "{label}: first-traversal metric"
    );
}

/// Fixed-seed determinism across the sequential and parallel engines, on
/// the paper configuration and a spread of circuits.
#[test]
fn parallel_is_bit_identical_to_sequential() {
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    let workloads = vec![
        ("qft8", qft::qft(8)),
        ("random12", random::random_circuit(12, 120, 0.7, 7)),
        ("random16", random::random_circuit(16, 200, 0.6, 21)),
        ("empty", Circuit::new(1)),
    ];
    for (label, circuit) in &workloads {
        let sequential = router.route(circuit).unwrap();
        let parallel = router.route_parallel(circuit).unwrap();
        assert_same_result(label, &sequential, &parallel);
    }
}

/// Determinism also holds run-to-run (the parallel engine cannot be
/// schedule-dependent) and under thread-count changes via the batch API.
#[test]
fn parallel_is_stable_across_runs() {
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    let circuit = random::random_circuit(14, 150, 0.65, 3);
    let first = router.route_parallel(&circuit).unwrap();
    for _ in 0..3 {
        let again = router.route_parallel(&circuit).unwrap();
        assert_same_result("rerun", &first, &again);
    }
}

/// Batch routing: every output verifies against its own input (the
/// permutation-replay check from `sabre_verify`), in order.
#[test]
fn route_batch_outputs_all_verify() {
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    let circuits: Vec<Circuit> = (0..10)
        .map(|i| {
            random::random_circuit(4 + (i % 5) * 3, 30 + i as usize * 17, 0.6, 1000 + i as u64)
        })
        .collect();
    let results = router.route_batch(&circuits);
    assert_eq!(results.len(), circuits.len());
    for (i, (circuit, result)) in circuits.iter().zip(&results).enumerate() {
        let result = result
            .as_ref()
            .unwrap_or_else(|e| panic!("circuit {i}: {e}"));
        let routed = &result.best;
        verify_routed(
            circuit,
            &routed.physical,
            routed.initial_layout.logical_to_physical(),
            routed.final_layout.logical_to_physical(),
            device.graph(),
        )
        .unwrap_or_else(|e| panic!("circuit {i} failed verification: {e}"));
        // And each slot matches routing that circuit alone.
        assert_same_result("batch-vs-single", result, &router.route(circuit).unwrap());
    }
}

/// Batch transpilation: full pipeline outputs stay semantically faithful
/// on registers small enough to simulate.
#[test]
fn transpile_batch_outputs_are_semantically_faithful() {
    let device = devices::linear(6);
    let circuits: Vec<Circuit> = (0..6)
        .map(|i| random::random_circuit(5, 25 + i * 9, 0.6, 77 + i as u64))
        .collect();
    let outputs = transpile_batch(&circuits, device.graph(), &TranspileOptions::default()).unwrap();
    assert_eq!(outputs.len(), circuits.len());
    for (i, (circuit, out)) in circuits.iter().zip(&outputs).enumerate() {
        let out = out.as_ref().unwrap_or_else(|e| panic!("circuit {i}: {e}"));
        verify_semantics_small(
            circuit,
            &out.circuit,
            out.initial_layout.logical_to_physical(),
            out.final_layout.logical_to_physical(),
        )
        .unwrap_or_else(|e| panic!("circuit {i} not equivalent: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel ≡ sequential for arbitrary trial counts, seeds, and
    /// circuits — the determinism contract is not an artifact of the
    /// paper's 5-restart configuration.
    #[test]
    fn parallel_matches_sequential_for_any_trial_count(
        num_restarts in 1usize..12,
        num_traversals in 0usize..3,
        seed in any::<u64>(),
        (n, gates, circuit_seed) in (2u32..=10, 0usize..60, any::<u64>()),
    ) {
        let num_traversals = 2 * num_traversals + 1; // must be odd
        let circuit = random::random_circuit(n, gates, 0.6, circuit_seed);
        let config = SabreConfig {
            num_restarts,
            num_traversals,
            seed,
            ..SabreConfig::paper()
        };
        let router = SabreRouter::new(devices::ibm_q20_tokyo().graph().clone(), config).unwrap();
        let sequential = router.route(&circuit).unwrap();
        let parallel = router.route_parallel(&circuit).unwrap();
        prop_assert_eq!(&sequential.best, &parallel.best);
        prop_assert_eq!(sequential.best_restart, parallel.best_restart);
        prop_assert_eq!(sequential.perfect_placement, parallel.perfect_placement);
        prop_assert_eq!(&sequential.traversals, &parallel.traversals);
        prop_assert_eq!(
            sequential.first_traversal_added_gates,
            parallel.first_traversal_added_gates
        );
        prop_assert_eq!(parallel.traversals.len(), num_restarts * num_traversals);
    }
}
