//! Integration tests for the device-cache layer: cached routing must be
//! bit-identical to uncached routing (sequential and parallel), device
//! and noise fingerprints must invalidate correctly, and embedding-probe
//! verdicts must be reused without changing any result.

use sabre::{
    transpile_batch, transpile_batch_cached, DeviceCache, SabreConfig, SabreResult, SabreRouter,
    TranspileOptions,
};
use sabre_benchgen::{qft, random};
use sabre_circuit::{Circuit, Qubit};
use sabre_topology::noise::NoiseModel;
use sabre_topology::{devices, CouplingGraph};

/// A circuit whose interaction graph is K5 — never embeddable on Tokyo.
fn k5() -> Circuit {
    let mut c = Circuit::new(5);
    for a in 0..5u32 {
        for b in (a + 1)..5 {
            c.cx(Qubit(a), Qubit(b));
        }
    }
    c
}

/// The deterministic fields of two results must agree exactly.
fn assert_same_result(a: &SabreResult, b: &SabreResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_restart, b.best_restart);
    assert_eq!(a.perfect_placement, b.perfect_placement);
    assert_eq!(a.traversals, b.traversals);
    assert_eq!(a.first_traversal_added_gates, b.first_traversal_added_gates);
}

#[test]
fn cached_routing_is_bit_identical_sequential_and_parallel() {
    let device = devices::ibm_q20_tokyo();
    let config = SabreConfig::paper();
    let cache = DeviceCache::new();
    let circuits = [qft::qft(8), random::random_circuit(14, 160, 0.7, 11), k5()];
    let uncached = SabreRouter::new(device.graph().clone(), config).unwrap();
    for circuit in &circuits {
        let reference = uncached.route(circuit).unwrap();
        // Two warm rounds: the second exercises every cache layer
        // (graph entry AND embedding verdict) on the hit path.
        for _round in 0..2 {
            let router = cache.router(device.graph(), config).unwrap();
            let sequential = router.route(circuit).unwrap();
            let parallel = router.route_parallel(circuit).unwrap();
            assert_same_result(&sequential, &reference);
            assert_same_result(&parallel, &reference);
        }
    }
    assert_eq!(cache.stats().graph_misses, 1);
}

#[test]
fn verdict_cache_skips_probe_backtracking_on_repeat_routes() {
    let device = devices::ibm_q20_tokyo();
    let cache = DeviceCache::new();
    let router = cache.router(device.graph(), SabreConfig::paper()).unwrap();

    // Non-embeddable: the first route records the verdict, the second
    // consults it — zero backtracking steps, identical output.
    let first = router.route(&k5()).unwrap();
    let after_first = cache.stats();
    assert_eq!(after_first.embedding_misses, 1);
    assert_eq!(after_first.embedding_hits, 0);
    let second = router.route(&k5()).unwrap();
    let after_second = cache.stats();
    assert_eq!(after_second.embedding_misses, 1, "probe must not re-run");
    assert_eq!(after_second.embedding_hits, 1);
    assert_same_result(&first, &second);
    assert!(!first.perfect_placement);

    // Embeddable with repeated interactions: the probe's Found verdict
    // must replay into the same zero-SWAP result. A single low-effort
    // restart cannot stumble into a 12-ring placement, so the probe runs
    // (and wins) deterministically; the router comes from the same cache,
    // so it shares the verdict store.
    let fast = cache.router(device.graph(), SabreConfig::fast()).unwrap();
    let mut ring = Circuit::new(12);
    for _ in 0..4 {
        for i in 0..12u32 {
            ring.cx(Qubit(i), Qubit((i + 1) % 12));
        }
    }
    let first = fast.route(&ring).unwrap();
    assert!(first.perfect_placement, "probe must beat one weak restart");
    assert_eq!(first.best.num_swaps, 0);
    let second = fast.route(&ring).unwrap();
    assert_same_result(&first, &second);
    let stats = cache.stats();
    assert_eq!(stats.embedding_misses, 2);
    assert_eq!(stats.embedding_hits, 2);
}

#[test]
fn graph_change_invalidates_noise_change_refreshes() {
    let cache = DeviceCache::new();
    let config = SabreConfig::fast();

    // Same structure, different construction: one entry.
    let a = CouplingGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let b = CouplingGraph::from_edges(5, [(4, 0), (3, 4), (2, 3), (1, 2), (0, 1), (1, 0)]).unwrap();
    cache.router(&a, config).unwrap();
    cache.router(&b, config).unwrap();
    assert_eq!(cache.len(), 1);

    // Removing one edge is a different device: new entry, and routing
    // reflects the new topology (the removed chord now needs a SWAP).
    let line = CouplingGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
    let router = cache.router(&line, config).unwrap();
    assert_eq!(cache.len(), 2);
    let mut c = Circuit::new(5);
    c.cx(Qubit(0), Qubit(4));
    let routed = router.route(&c).unwrap();
    assert_eq!(
        routed.best.num_swaps,
        SabreRouter::new(line.clone(), config)
            .unwrap()
            .route(&c)
            .unwrap()
            .best
            .num_swaps
    );

    // Noise: same model twice hits, changed model misses, and the cached
    // weighted matrix routes identically to a cold noise-aware router.
    let noise = NoiseModel::calibrated(&line, 0.02, 4.0, 1);
    let cold = SabreRouter::with_noise(line.clone(), config, &noise)
        .unwrap()
        .route(&c)
        .unwrap();
    for _ in 0..2 {
        let warm = cache
            .router_with_noise(&line, config, &noise)
            .unwrap()
            .route(&c)
            .unwrap();
        assert_same_result(&warm, &cold);
    }
    let recalibrated = NoiseModel::calibrated(&line, 0.02, 4.0, 2);
    cache.refresh_noise(&line, &recalibrated).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.noise_hits, 1);
    assert_eq!(stats.noise_misses, 2); // original build + refresh
    let refreshed = cache
        .router_with_noise(&line, config, &recalibrated)
        .unwrap()
        .route(&c)
        .unwrap();
    assert_same_result(
        &refreshed,
        &SabreRouter::with_noise(line, config, &recalibrated)
            .unwrap()
            .route(&c)
            .unwrap(),
    );
    assert_eq!(cache.stats().noise_hits, 2, "refreshed calibration is warm");
}

#[test]
fn cached_batch_pipeline_is_stable_across_thread_counts_and_rounds() {
    // `RAYON_NUM_THREADS` varies in CI (the test job re-runs with 8): the
    // cached batch output must not depend on it, or on cache warmth.
    let device = devices::ibm_q20_tokyo();
    let options = TranspileOptions {
        config: SabreConfig::paper(),
        ..TranspileOptions::default()
    };
    let circuits: Vec<Circuit> = (0..6)
        .map(|i| random::random_circuit(12, 100, 0.6, i as u64))
        .collect();
    let reference = transpile_batch(&circuits, device.graph(), &options).unwrap();
    let cache = DeviceCache::new();
    for _ in 0..2 {
        let cached = transpile_batch_cached(&circuits, device.graph(), &options, &cache);
        assert_eq!(cached.len(), reference.len());
        for (r, c) in reference.iter().zip(&cached) {
            let (r, c) = (r.as_ref().unwrap(), c.output().unwrap());
            assert_eq!(r.circuit, c.circuit);
            assert_eq!(r.initial_layout, c.initial_layout);
            assert_eq!(r.final_layout, c.final_layout);
            assert_eq!(r.swaps_inserted, c.swaps_inserted);
        }
    }
}
