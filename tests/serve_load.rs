//! Load shape of the reactor serving core: one thousand concurrent
//! keep-alive connections served from a single poll loop.
//!
//! The test is `#[ignore]`d because it opens ~1k sockets and needs a
//! raised fd limit; CI runs it explicitly in the `serve-load` job
//! (`ulimit -n 8192 && cargo test --release --test serve_load -- --ignored`).
//!
//! Acceptance criteria pinned here:
//! - the connection table holds ≥ 1024 simultaneously open keep-alive
//!   connections (visible in the `sabre_serve_open_connections` gauge);
//! - resident memory stays flat while they are parked and while they
//!   issue several request rounds (no per-connection thread stacks);
//! - request p99 latency stays bounded while the table is full.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

mod common;
use common::http;

use sabre_serve::{start, ServeConfig, ServerHandle};

const THREADS: usize = 16;
const CONNS_PER_THREAD: usize = 64;
const TOTAL_CONNS: usize = THREADS * CONNS_PER_THREAD; // 1024
const ROUNDS: usize = 3;

/// RSS growth allowed across the whole run. 1024 blocking threads would
/// cost ≥ 8 MiB of stacks *minimum* (and typically far more); the
/// reactor's per-connection state is a few KiB.
const RSS_GROWTH_LIMIT_KB: u64 = 48 * 1024;

/// Per-request latency bound at p99. `/healthz` is answered inline on
/// the reactor thread, so even with 1024 parked connections a request
/// should never sit behind seconds of work.
const P99_LIMIT: Duration = Duration::from_millis(750);

fn server(config: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("start loopback server")
}

/// Resident set size of this process in kB (Linux); `None` elsewhere.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Current value of the `sabre_serve_open_connections` gauge.
fn open_connections(addr: SocketAddr) -> u64 {
    let (status, _, text) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200, "GET /metrics");
    text.lines()
        .find_map(|l| l.strip_prefix("sabre_serve_open_connections "))
        .map(|v| v.trim().parse().expect("gauge value"))
        .unwrap_or(0)
}

/// Connects with a few retries: 16 threads dialing at once can
/// transiently overflow the listen backlog.
fn connect(addr: SocketAddr) -> TcpStream {
    let mut last_err = None;
    for _ in 0..20 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                return stream;
            }
            Err(e) => {
                last_err = Some(e);
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
    panic!("connect failed after retries: {last_err:?}");
}

/// Issues one keep-alive `GET /healthz` on an already-open connection
/// and reads the full `Content-Length`-delimited response.
fn round_trip(stream: &mut TcpStream) -> Duration {
    let started = Instant::now();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: load\r\n\r\n")
        .expect("write request");
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // Find the end of the headers, then the declared body length.
        if let Some(header_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let headers = String::from_utf8_lossy(&buf[..header_end]);
            assert!(
                headers.starts_with("HTTP/1.1 200"),
                "unexpected status line: {headers:.64}"
            );
            let body_len: usize = headers
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().expect("content-length"))
                })
                .expect("response declares Content-Length");
            if buf.len() >= header_end + 4 + body_len {
                return started.elapsed();
            }
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed a keep-alive connection mid-response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
#[ignore = "load test — needs a raised fd limit; run via the CI serve-load job"]
fn thousand_keep_alive_connections_stay_flat_and_fast() {
    let handle = server(ServeConfig {
        workers: 2,
        max_connections: 2048,
        max_requests_per_connection: 64,
        idle_timeout_ms: 60_000,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Rendezvous points: [connected] and then one per request round, so
    // RSS can be sampled while every connection is open and parked.
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(TOTAL_CONNS * ROUNDS)));
    let clients: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let latencies = Arc::clone(&latencies);
            thread::spawn(move || {
                let mut conns: Vec<TcpStream> =
                    (0..CONNS_PER_THREAD).map(|_| connect(addr)).collect();
                barrier.wait(); // all threads connected
                barrier.wait(); // main verified the gauge + sampled RSS
                for _ in 0..ROUNDS {
                    let mut timings = Vec::with_capacity(CONNS_PER_THREAD);
                    for stream in &mut conns {
                        timings.push(round_trip(stream));
                    }
                    latencies.lock().unwrap().extend(timings);
                    barrier.wait(); // round done; main samples RSS
                }
                drop(conns);
            })
        })
        .collect();

    barrier.wait(); // all threads connected
    let open = open_connections(addr);
    assert!(
        open >= TOTAL_CONNS as u64,
        "only {open} connections open, wanted ≥ {TOTAL_CONNS}"
    );
    let rss_parked = rss_kb();
    barrier.wait(); // release the request rounds
    let mut rss_rounds = Vec::new();
    for _ in 0..ROUNDS {
        barrier.wait();
        rss_rounds.push(rss_kb());
    }
    for client in clients {
        client.join().expect("client thread");
    }

    // p99 over every request issued while the table held 1024 conns.
    let mut latencies = Arc::try_unwrap(latencies)
        .expect("all clients joined")
        .into_inner()
        .unwrap();
    assert_eq!(latencies.len(), TOTAL_CONNS * ROUNDS);
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    assert!(
        p99 <= P99_LIMIT,
        "p99 {p99:?} exceeds {P99_LIMIT:?} (max {:?})",
        latencies.last().unwrap()
    );

    // RSS must stay flat from "1024 parked" through every round.
    if let (Some(parked), Some(&Some(last))) = (rss_parked, rss_rounds.last()) {
        let growth = last.saturating_sub(parked);
        assert!(
            growth < RSS_GROWTH_LIMIT_KB,
            "RSS grew {growth} kB across {ROUNDS} rounds \
             (parked {parked} kB, final {last} kB)"
        );
    }

    handle.shutdown();
}
