//! Load shape of the reactor serving core: one thousand concurrent
//! keep-alive connections served from a single poll loop.
//!
//! The test is `#[ignore]`d because it opens ~1k sockets and needs a
//! raised fd limit; CI runs it explicitly in the `serve-load` job
//! (`ulimit -n 8192 && cargo test --release --test serve_load -- --ignored`).
//!
//! Acceptance criteria pinned here:
//! - the connection table holds ≥ 1024 simultaneously open keep-alive
//!   connections (visible in the `sabre_serve_open_connections` gauge);
//! - resident memory stays flat while they are parked and while they
//!   issue several request rounds (no per-connection thread stacks);
//! - request p99 latency stays bounded while the table is full.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

mod common;
use common::{http, post_json};

use sabre_circuit::{Circuit, Qubit};
use sabre_json::JsonValue;
use sabre_qasm::to_qasm;
use sabre_serve::{start, ServeConfig, ServerHandle};

const THREADS: usize = 16;
const CONNS_PER_THREAD: usize = 64;
const TOTAL_CONNS: usize = THREADS * CONNS_PER_THREAD; // 1024
const ROUNDS: usize = 3;

/// RSS growth allowed across the whole run. 1024 blocking threads would
/// cost ≥ 8 MiB of stacks *minimum* (and typically far more); the
/// reactor's per-connection state is a few KiB.
const RSS_GROWTH_LIMIT_KB: u64 = 48 * 1024;

/// Per-request latency bound at p99. `/healthz` is answered inline on
/// the reactor thread, so even with 1024 parked connections a request
/// should never sit behind seconds of work.
const P99_LIMIT: Duration = Duration::from_millis(750);

fn server(config: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("start loopback server")
}

/// Resident set size of this process in kB (Linux); `None` elsewhere.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Current value of the `sabre_serve_open_connections` gauge.
fn open_connections(addr: SocketAddr) -> u64 {
    let (status, _, text) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200, "GET /metrics");
    text.lines()
        .find_map(|l| l.strip_prefix("sabre_serve_open_connections "))
        .map(|v| v.trim().parse().expect("gauge value"))
        .unwrap_or(0)
}

/// Connects with a few retries: 16 threads dialing at once can
/// transiently overflow the listen backlog.
fn connect(addr: SocketAddr) -> TcpStream {
    let mut last_err = None;
    for _ in 0..20 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                return stream;
            }
            Err(e) => {
                last_err = Some(e);
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
    panic!("connect failed after retries: {last_err:?}");
}

/// Issues one keep-alive `GET /healthz` on an already-open connection
/// and reads the full `Content-Length`-delimited response.
fn round_trip(stream: &mut TcpStream) -> Duration {
    let started = Instant::now();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: load\r\n\r\n")
        .expect("write request");
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // Find the end of the headers, then the declared body length.
        if let Some(header_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let headers = String::from_utf8_lossy(&buf[..header_end]);
            assert!(
                headers.starts_with("HTTP/1.1 200"),
                "unexpected status line: {headers:.64}"
            );
            let body_len: usize = headers
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().expect("content-length"))
                })
                .expect("response declares Content-Length");
            if buf.len() >= header_end + 4 + body_len {
                return started.elapsed();
            }
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed a keep-alive connection mid-response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Current value of a counter in the `/metrics` exposition.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, text) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200, "GET /metrics");
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|v| v.trim().parse().expect("metric value"))
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

/// Plan-cache churn under a deliberately tiny capacity: far more
/// distinct structures than slots rotate through `POST /route`, each
/// resubmitted with fresh angles, so the LRU evicts constantly while
/// hits keep landing on the hot structures. Pins the bounded-memory
/// contract: evictions happen, the entry gauge respects the capacity,
/// re-bound responses stay correct, and RSS stays flat — a leaky cache
/// (or eviction invalidating plans still being served) would show up
/// here.
#[test]
#[ignore = "load test — sustained request churn; run via the CI serve-load job"]
fn plan_cache_churn_is_bounded_and_leak_free() {
    const CAPACITY: usize = 8;
    const STRUCTURES: usize = 32;
    const ROUNDS: usize = 12;

    let handle = server(ServeConfig {
        workers: 2,
        plan_cache_capacity: CAPACITY,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let (status, response) = post_json(
        addr,
        "/devices",
        &JsonValue::object([("id", "line".into()), ("builtin", "linear:12".into())]),
    );
    assert_eq!(status, 201, "{response}");

    // Structure `s`: a distinct CX pattern; `theta` only moves angles.
    let circuit = |s: usize, theta: f64| {
        let mut c = Circuit::new(12);
        for k in 0..(4 + s % 5) as u32 {
            let a = (k * 3 + s as u32) % 12;
            let b = (k * 5 + 1) % 12;
            if a != b {
                c.cx(Qubit(a), Qubit(b));
                c.rz(Qubit(b), theta * f64::from(k + 1));
            }
        }
        c
    };
    let submit = |s: usize, theta: f64| {
        let body = JsonValue::object([
            ("device", "line".into()),
            (
                "circuit",
                JsonValue::object([("qasm", to_qasm(&circuit(s, theta)).into())]),
            ),
            ("include_physical", false.into()),
        ]);
        let (status, response) = post_json(addr, "/route", &body);
        assert_eq!(status, 200, "{response}");
        response
    };

    // Warm every structure once, then sample the baseline RSS.
    for s in 0..STRUCTURES {
        submit(s, 0.5);
    }
    let rss_warm = rss_kb();

    for round in 0..ROUNDS {
        for s in 0..STRUCTURES {
            // Cold churn: strict rotation through 4× capacity distinct
            // structures means each is evicted before its next visit.
            submit(s, 0.1 + 0.07 * round as f64 + s as f64);
            // Hot traffic: one of CAPACITY/2 structures is re-submitted
            // with fresh angles on *every* iteration, so its LRU stamp
            // stays newer than the cold tail and it survives eviction.
            let hot = s % (CAPACITY / 2);
            let response = submit(hot, 0.9 + 0.01 * (round * STRUCTURES + s) as f64);
            // Correctness of re-bound answers under churn: a hit is
            // served with zero search steps.
            if response.get("plan_cache").and_then(JsonValue::as_str) == Some("hit") {
                assert_eq!(
                    response
                        .get("result")
                        .unwrap()
                        .get("total_search_steps")
                        .unwrap()
                        .as_u64(),
                    Some(0)
                );
            }
        }
    }

    assert!(
        metric(addr, "sabre_serve_plan_cache_evictions_total") > 0,
        "rotating {STRUCTURES} structures through {CAPACITY} slots must evict"
    );
    assert!(metric(addr, "sabre_serve_plan_cache_hits_total") > 0);
    assert!(metric(addr, "sabre_serve_plan_cache_entries") <= CAPACITY as u64);

    // Bounded memory: churning hundreds of plans through a tiny cache
    // must not grow the process. The limit is generous (allocator slack,
    // metrics strings) — a real leak is megabytes per round.
    if let (Some(warm), Some(last)) = (rss_warm, rss_kb()) {
        let growth = last.saturating_sub(warm);
        assert!(
            growth < RSS_GROWTH_LIMIT_KB,
            "RSS grew {growth} kB across {ROUNDS} churn rounds \
             (warm {warm} kB, final {last} kB)"
        );
    }
    handle.shutdown();
}

#[test]
#[ignore = "load test — needs a raised fd limit; run via the CI serve-load job"]
fn thousand_keep_alive_connections_stay_flat_and_fast() {
    let handle = server(ServeConfig {
        workers: 2,
        max_connections: 2048,
        max_requests_per_connection: 64,
        idle_timeout_ms: 60_000,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Rendezvous points: [connected] and then one per request round, so
    // RSS can be sampled while every connection is open and parked.
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(TOTAL_CONNS * ROUNDS)));
    let clients: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let latencies = Arc::clone(&latencies);
            thread::spawn(move || {
                let mut conns: Vec<TcpStream> =
                    (0..CONNS_PER_THREAD).map(|_| connect(addr)).collect();
                barrier.wait(); // all threads connected
                barrier.wait(); // main verified the gauge + sampled RSS
                for _ in 0..ROUNDS {
                    let mut timings = Vec::with_capacity(CONNS_PER_THREAD);
                    for stream in &mut conns {
                        timings.push(round_trip(stream));
                    }
                    latencies.lock().unwrap().extend(timings);
                    barrier.wait(); // round done; main samples RSS
                }
                drop(conns);
            })
        })
        .collect();

    barrier.wait(); // all threads connected
    let open = open_connections(addr);
    assert!(
        open >= TOTAL_CONNS as u64,
        "only {open} connections open, wanted ≥ {TOTAL_CONNS}"
    );
    let rss_parked = rss_kb();
    barrier.wait(); // release the request rounds
    let mut rss_rounds = Vec::new();
    for _ in 0..ROUNDS {
        barrier.wait();
        rss_rounds.push(rss_kb());
    }
    for client in clients {
        client.join().expect("client thread");
    }

    // p99 over every request issued while the table held 1024 conns.
    let mut latencies = Arc::try_unwrap(latencies)
        .expect("all clients joined")
        .into_inner()
        .unwrap();
    assert_eq!(latencies.len(), TOTAL_CONNS * ROUNDS);
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    assert!(
        p99 <= P99_LIMIT,
        "p99 {p99:?} exceeds {P99_LIMIT:?} (max {:?})",
        latencies.last().unwrap()
    );

    // RSS must stay flat from "1024 parked" through every round.
    if let (Some(parked), Some(&Some(last))) = (rss_parked, rss_rounds.last()) {
        let growth = last.saturating_sub(parked);
        assert!(
            growth < RSS_GROWTH_LIMIT_KB,
            "RSS grew {growth} kB across {ROUNDS} rounds \
             (parked {parked} kB, final {last} kB)"
        );
    }

    handle.shutdown();
}
