//! Optimality integration tests: SABRE and the baselines against the
//! exact (exponential) optimum on tiny instances — the ground truth for
//! the paper's "SABRE is able to find the optimal mapping for small
//! benchmarks" claim.

use sabre::{SabreConfig, SabreRouter};
use sabre_baseline::{exact, greedy, trivial};
use sabre_benchgen::random;
use sabre_circuit::{Circuit, Qubit};
use sabre_topology::devices;

const CAP: usize = 2_000_000;

/// Deterministic tiny workloads over 4–5 qubits.
fn tiny_workloads() -> Vec<(String, Circuit)> {
    let mut out = Vec::new();
    for seed in 0..8u64 {
        let c = random::random_circuit(4, 10, 0.8, seed);
        out.push((format!("random4-{seed}"), c));
    }
    for seed in 0..4u64 {
        let c = random::random_circuit(5, 8, 0.9, 100 + seed);
        out.push((format!("random5-{seed}"), c));
    }
    out
}

/// The exact optimum is a true lower bound for every router.
#[test]
fn exact_lower_bounds_all_routers() {
    let device = devices::ibm_qx2(); // 5 qubits, sparse enough to be hard
    let graph = device.graph();
    let router = SabreRouter::new(graph.clone(), SabreConfig::paper()).unwrap();
    for (name, circuit) in tiny_workloads() {
        let optimal = exact::min_swaps_global(&circuit, graph, CAP)
            .unwrap_or_else(|| panic!("{name}: exact search exceeded cap"));
        let sabre_swaps = router.route(&circuit).unwrap().best.num_swaps;
        let greedy_swaps = greedy::route(&circuit, graph).num_swaps;
        let trivial_swaps = trivial::route(&circuit, graph).num_swaps;
        assert!(
            sabre_swaps >= optimal,
            "{name}: sabre {sabre_swaps} below the exact optimum {optimal} — exact is broken"
        );
        assert!(greedy_swaps >= optimal, "{name}: greedy below optimum");
        assert!(trivial_swaps >= optimal, "{name}: trivial below optimum");
    }
}

/// SABRE lands within one SWAP of the global optimum on tiny instances
/// and hits it on a clear majority — the paper's small-case claim.
#[test]
fn sabre_is_near_optimal_on_tiny_instances() {
    let device = devices::ibm_qx2();
    let graph = device.graph();
    let router = SabreRouter::new(graph.clone(), SabreConfig::paper()).unwrap();
    let mut hits = 0usize;
    let mut total = 0usize;
    for (name, circuit) in tiny_workloads() {
        let optimal = exact::min_swaps_global(&circuit, graph, CAP).unwrap();
        let sabre_swaps = router.route(&circuit).unwrap().best.num_swaps;
        assert!(
            sabre_swaps <= optimal + 2,
            "{name}: sabre {sabre_swaps} vs optimal {optimal}"
        );
        total += 1;
        hits += usize::from(sabre_swaps == optimal);
    }
    assert!(
        hits * 2 > total,
        "sabre matched the optimum on only {hits}/{total} tiny instances"
    );
}

/// On embeddable circuits the optimum is zero and SABRE finds it.
#[test]
fn embeddable_instances_route_for_free() {
    let device = devices::ibm_qx2();
    let graph = device.graph();
    let router = SabreRouter::new(graph.clone(), SabreConfig::paper()).unwrap();
    for seed in 0..6u64 {
        let circuit = random::embeddable_circuit(graph, 4, 20, 0.7, seed);
        assert_eq!(
            exact::min_swaps_global(&circuit, graph, CAP),
            Some(0),
            "seed {seed}: generator promised embeddability"
        );
        let result = router.route(&circuit).unwrap();
        assert_eq!(
            result.added_gates(),
            0,
            "seed {seed}: sabre missed the free mapping"
        );
    }
}

/// The paper's Figure 3 walkthrough end to end: identity start costs one
/// SWAP; SABRE with placement freedom matches the global optimum of 1.
#[test]
fn figure3_walkthrough_matches_paper() {
    let graph =
        sabre_topology::CouplingGraph::from_edges(4, [(0, 1), (1, 3), (3, 2), (2, 0)]).unwrap();
    let (q1, q2, q3, q4) = (Qubit(0), Qubit(1), Qubit(2), Qubit(3));
    let mut c = Circuit::new(4);
    c.cx(q1, q2);
    c.cx(q3, q4);
    c.cx(q2, q4);
    c.cx(q2, q3);
    c.cx(q3, q4);
    c.cx(q1, q4);

    let optimal = exact::min_swaps_global(&c, &graph, CAP).unwrap();
    assert_eq!(optimal, 1);
    let router = SabreRouter::new(graph, SabreConfig::paper()).unwrap();
    let result = router.route(&c).unwrap();
    assert_eq!(
        result.best.num_swaps, optimal,
        "sabre finds the known optimum"
    );
}
