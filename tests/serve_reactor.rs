//! Reactor-specific behavior of `sabre-serve`: the event-loop serving
//! core that replaced thread-per-connection I/O.
//!
//! These pin the PR's acceptance criteria:
//! - idle keep-alive connections are parked in the connection table, not
//!   on threads, and are reaped by the idle timeout;
//! - a slowloris client dripping bytes is reaped by the (absolute) read
//!   deadline without stalling other clients;
//! - a client that stops reading its response is reaped by the write
//!   deadline;
//! - per-client token buckets answer `429` under a configured rate;
//! - predicted-cost admission answers a priced `429` (with
//!   `projected_wait_ms`) when the modeled queue wait blows the SLO;
//! - a full connection table answers a canned `503` at accept time.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

mod common;
use common::{http, post_json};

use sabre_circuit::{Circuit, Qubit};
use sabre_json::JsonValue;
use sabre_qasm::to_qasm;
use sabre_serve::{start, ServeConfig, ServerHandle};

fn server(config: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("start loopback server")
}

/// Registers a builtin device and asserts success.
fn register(addr: SocketAddr, id: &str, builtin: &str) {
    let (status, _) = post_json(
        addr,
        "/devices",
        &JsonValue::object([("id", id.into()), ("builtin", builtin.into())]),
    );
    assert_eq!(status, 201, "registering {builtin}");
}

/// Current value of one rendered metric sample (`name` includes labels):
/// `None` when `/metrics` itself was shed (e.g. a transiently full
/// connection table), `Some(0)` when the line is absent.
fn metric_opt(addr: SocketAddr, name: &str) -> Option<u64> {
    // A shed connection may be reset mid-request, which the strict
    // helper treats as fatal; here it just means "try again".
    let (status, _, text) =
        std::panic::catch_unwind(|| http(addr, "GET", "/metrics", None)).ok()?;
    if status != 200 {
        return None;
    }
    Some(
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .map(|v| v.trim().parse().expect("metric value"))
            .unwrap_or(0),
    )
}

/// Like [`metric_opt`], but `/metrics` must answer.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    metric_opt(addr, name).expect("GET /metrics was rejected")
}

/// Polls a metric until it reaches `target` (panics after `timeout`).
/// Shed probes are retried, so the helper works while the connection
/// table is draining.
fn wait_for_metric(addr: SocketAddr, name: &str, target: u64, timeout: Duration) -> u64 {
    let deadline = Instant::now() + timeout;
    let mut last = None;
    loop {
        let value = metric_opt(addr, name);
        if let Some(value) = value {
            if value >= target {
                return value;
            }
            last = Some(value);
        }
        assert!(
            Instant::now() < deadline,
            "{name} never reached {target} (last {last:?})"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// Live thread count of this process (Linux); `None` elsewhere.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// A `/route` body for a small circuit that needs at least one SWAP.
fn small_route_body(device: &str) -> JsonValue {
    let mut circuit = Circuit::new(4);
    circuit.cx(Qubit(0), Qubit(3));
    JsonValue::object([
        ("device", device.into()),
        (
            "circuit",
            JsonValue::object([("qasm", to_qasm(&circuit).into())]),
        ),
    ])
}

/// Sixty-four parked keep-alive connections must cost table slots, not
/// threads — and the idle timeout must reap every one of them.
#[test]
fn idle_keep_alive_connections_hold_no_threads() {
    let handle = server(ServeConfig {
        workers: 1,
        idle_timeout_ms: 1500,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let threads_before = thread_count();
    let idle: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(addr).expect("connect idle client"))
        .collect();
    // All 64 are in the connection table (the probing connection itself
    // is the 65th).
    wait_for_metric(
        addr,
        "sabre_serve_open_connections",
        64,
        Duration::from_secs(10),
    );

    if let (Some(before), Some(after)) = (threads_before, thread_count()) {
        // Thread-per-connection would add 64 here. Unrelated suite tests
        // run concurrently in this process, so allow slack well below
        // that signal.
        assert!(
            after <= before + 16,
            "64 idle connections grew the thread count {before} -> {after}"
        );
    }

    // Every parked connection is reaped by the idle deadline — the
    // sockets are still open on our side, so these are server-initiated.
    wait_for_metric(
        addr,
        "sabre_serve_connections_reaped_total{reason=\"idle\"}",
        64,
        Duration::from_secs(10),
    );
    let open = metric(addr, "sabre_serve_open_connections");
    assert!(open <= 2, "idle connections still in the table: {open}");
    drop(idle);
    handle.shutdown();
}

/// A slowloris client dripping header bytes is reaped once the absolute
/// read deadline expires, and never stalls a concurrent client.
#[test]
fn slowloris_is_reaped_by_the_read_deadline() {
    let handle = server(ServeConfig {
        workers: 1,
        read_deadline_ms: 600,
        idle_timeout_ms: 30_000, // isolate the read deadline
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut slow = TcpStream::connect(addr).expect("connect slowloris");
    slow.write_all(b"POST /route HTTP/1.1\r\n").unwrap();
    let started = Instant::now();
    // Drip one byte at a time — each write is progress, which must NOT
    // extend the absolute per-request budget.
    let dripper = thread::spawn({
        let slow = slow.try_clone().unwrap();
        move || {
            for _ in 0..50 {
                if (&slow).write_all(b"X").is_err() {
                    return; // server hung up: exactly what we expect
                }
                thread::sleep(Duration::from_millis(100));
            }
        }
    });

    // The victim is slow; everyone else is served meanwhile.
    let (status, _, _) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "healthz stalled behind a slowloris client");

    // The server closes the connection at the deadline: our read sees EOF.
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = Vec::new();
    let _ = slow.read_to_end(&mut sink);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "slowloris survived {elapsed:?} despite a 600ms read deadline"
    );
    assert!(
        metric(
            addr,
            "sabre_serve_connections_reaped_total{reason=\"read_deadline\"}"
        ) >= 1
    );
    dripper.join().unwrap();
    handle.shutdown();
}

/// A client that submits a job but never reads the (multi-megabyte)
/// response is reaped by the write deadline once the socket buffers fill
/// and write progress stops.
#[test]
fn stalled_reader_is_reaped_by_the_write_deadline() {
    let handle = server(ServeConfig {
        workers: 1,
        write_deadline_ms: 700,
        max_body_bytes: 32 << 20,
        idle_timeout_ms: 60_000,
        read_deadline_ms: 60_000,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "t20", "tokyo20");

    // A batch whose response dwarfs what loopback socket buffers absorb:
    // 700 natively-mapped circuits of 500 CX gates each, echoed back as
    // per-slot physical QASM (well past the ~4 MB the kernel buffers).
    let mut circuit = Circuit::new(4);
    for _ in 0..500 {
        circuit.cx(Qubit(0), Qubit(1));
    }
    let qasm = to_qasm(&circuit);
    let body = JsonValue::object([
        ("device", "t20".into()),
        (
            "circuits",
            (0..700)
                .map(|_| JsonValue::object([("qasm", qasm.as_str().into())]))
                .collect(),
        ),
        ("include_physical", true.into()),
        // Without this the optimizer cancels the repeated CX pairs and
        // the response collapses to a few KB.
        ("skip_optimizer", true.into()),
        (
            "config",
            JsonValue::object([("num_restarts", 1u64.into()), ("trials", 1u64.into())]),
        ),
    ])
    .to_compact();

    let mut stalled = TcpStream::connect(addr).expect("connect stalled reader");
    let request = format!(
        "POST /transpile_batch HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stalled.write_all(request.as_bytes()).unwrap();
    // …and never read a single response byte.

    wait_for_metric(
        addr,
        "sabre_serve_connections_reaped_total{reason=\"write_deadline\"}",
        1,
        Duration::from_secs(60),
    );
    drop(stalled);
    handle.shutdown();
}

/// With a 1 req/s per-client budget (burst 2), a burst of routing
/// requests sees the bucket drain: early requests succeed, the rest get
/// `429` naming the rate limit.
#[test]
fn per_client_rate_limit_answers_429() {
    let handle = server(ServeConfig {
        workers: 1,
        rate_limit_per_sec: 1,
        rate_limit_burst: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "t20", "tokyo20");

    let mut ok = 0;
    let mut limited = 0;
    for _ in 0..6 {
        let (status, response) = post_json(addr, "/route", &small_route_body("t20"));
        match status {
            200 => ok += 1,
            429 => {
                limited += 1;
                let error = response.get("error").and_then(JsonValue::as_str).unwrap();
                assert!(error.contains("rate limit"), "{response}");
            }
            other => panic!("unexpected status {other}: {response}"),
        }
    }
    assert!(ok >= 1, "the burst allowance admits the first requests");
    assert!(limited >= 1, "the drained bucket rejects the rest");
    assert!(
        metric(
            addr,
            "sabre_serve_admission_rejections_total{kind=\"rate_limited\"}"
        ) >= limited
    );
    // Registration and health stay exempt from the job-endpoint limiter.
    let (status, _, _) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    handle.shutdown();
}

/// Once live throughput telemetry exists, a backlog whose modeled drain
/// exceeds the SLO is shed with a priced `429` carrying the projected
/// wait.
#[test]
fn predicted_cost_admission_answers_priced_429() {
    let handle = server(ServeConfig {
        workers: 1,
        admission_slo_ms: 1,
        queue_capacity: 16,
        // The probes below re-post one tiny structure; with the plan
        // cache on they would be answered inline before admission
        // pricing — this test pins the pricing path itself.
        plan_cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "line", "linear:16");

    // Seed the throughput model: one completed job gives the admission
    // controller a live avg ns-per-step.
    let (status, response) = post_json(addr, "/route", &small_route_body("line"));
    assert_eq!(status, 200, "{response}");

    // One heavy job occupies the single worker; its estimated steps
    // (gates × restarts × traversals) keep the modeled wait far above a
    // 1ms SLO for its whole runtime. (A second heavy job would itself be
    // priced out — which is the point of the model.)
    let mut heavy = Circuit::new(16);
    for r in 0..2000u32 {
        heavy.cx(Qubit(r % 16), Qubit((r * 7 + 3) % 16));
    }
    let heavy_body = JsonValue::object([
        ("device", "line".into()),
        (
            "circuit",
            JsonValue::object([("qasm", to_qasm(&heavy).into())]),
        ),
        (
            "config",
            JsonValue::object([("num_restarts", 12u64.into())]),
        ),
        ("include_physical", false.into()),
    ]);
    let submitter = thread::spawn(move || post_json(addr, "/route", &heavy_body));

    // Probe until the model trips. Accepted probes are tiny jobs, so
    // they cannot drain the backlog below the SLO themselves.
    let deadline = Instant::now() + Duration::from_secs(30);
    let priced = loop {
        let (status, response) = post_json(addr, "/route", &small_route_body("line"));
        if status == 429 {
            break response;
        }
        assert!(
            Instant::now() < deadline,
            "modeled wait never exceeded the SLO (last status {status}: {response})"
        );
        thread::sleep(Duration::from_millis(20));
    };
    let projected = priced
        .get("projected_wait_ms")
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("429 body lacks projected_wait_ms: {priced}"));
    assert!(projected >= 1, "{priced}");
    let error = priced.get("error").and_then(JsonValue::as_str).unwrap();
    assert!(error.contains("SLO"), "{priced}");
    assert!(
        metric(
            addr,
            "sabre_serve_admission_rejections_total{kind=\"predicted_slo\"}"
        ) >= 1
    );

    let (status, response) = submitter.join().unwrap();
    assert_eq!(status, 200, "heavy job failed: {response}");
    handle.shutdown();
}

/// When the connection table is full, a new socket gets a canned `503`
/// (with `Retry-After`) at accept time and is closed immediately.
#[test]
fn full_connection_table_answers_canned_503() {
    let handle = server(ServeConfig {
        workers: 1,
        max_connections: 2,
        idle_timeout_ms: 30_000,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let occupant_a = TcpStream::connect(addr).expect("occupant a");
    let occupant_b = TcpStream::connect(addr).expect("occupant b");
    // Both occupants must be *accepted* (in the table) before the third
    // connection arrives; give the reactor a beat.
    thread::sleep(Duration::from_millis(300));

    let mut rejected = TcpStream::connect(addr).expect("third connection");
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    rejected
        .read_to_end(&mut raw)
        .expect("read canned response");
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 503"),
        "expected a canned 503, got: {text}"
    );
    assert!(text.contains("Retry-After:"), "{text}");
    assert!(text.contains("connection table is full"), "{text}");

    // Free the table, then confirm the shed was counted.
    drop(occupant_a);
    drop(occupant_b);
    let shed = wait_for_metric(
        addr,
        "sabre_serve_admission_rejections_total{kind=\"table_full\"}",
        1,
        Duration::from_secs(10),
    );
    assert!(shed >= 1);
    handle.shutdown();
}
