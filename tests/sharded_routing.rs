//! End-to-end tests for multi-device sharded routing (`sabre_shard`):
//!
//! - a circuit wider than every registered device routes across ≥ 2
//!   shards and the stitched plan passes the `sabre_verify` extension
//!   (per-shard coupling legality + semantic equivalence);
//! - output is bit-identical for a fixed seed across repeat calls, cold
//!   vs warm caches, and thread counts (CI runs this suite under
//!   `RAYON_NUM_THREADS=1` and `=8`);
//! - property tests: the partitioner never overfills a device and every
//!   sharded plan verifies;
//! - loopback e2e: `POST /route_sharded` returns the same plan as the
//!   direct library call.

use proptest::prelude::*;
use sabre::{DeviceCache, SabreConfig};
use sabre_benchgen::random::random_circuit;
use sabre_circuit::interaction::InteractionGraph;
use sabre_circuit::Qubit;
use sabre_json::JsonValue;
use sabre_shard::{partition, route_sharded, Fleet, ShardConfig, ShardSpec};
use sabre_topology::devices;
use sabre_topology::noise::NoiseModel;

mod common;
use common::post_json;

fn two_tokyo_fleet() -> Fleet {
    let mut fleet = Fleet::new();
    fleet
        .register("tokyo-a", devices::ibm_q20_tokyo().graph().clone())
        .unwrap();
    fleet
        .register("tokyo-b", devices::ibm_q20_tokyo().graph().clone())
        .unwrap();
    fleet
}

fn fast_shard_config(seed: u64) -> ShardConfig {
    ShardConfig {
        sabre: SabreConfig {
            seed,
            ..SabreConfig::fast()
        },
        ..ShardConfig::default()
    }
}

#[test]
fn wider_than_any_device_routes_across_two_shards_and_verifies() {
    let fleet = two_tokyo_fleet();
    let cache = DeviceCache::new();
    // 30 logical qubits: wider than each 20-qubit member, narrower than
    // the 40-qubit fleet.
    let circuit = random_circuit(30, 300, 0.8, 2024);
    assert!(circuit.num_qubits() > fleet.max_member_qubits());

    let plan = route_sharded(&circuit, &fleet, &fast_shard_config(7), &cache).unwrap();
    assert_eq!(plan.shards.len(), 2, "{plan}");
    for shard in &plan.shards {
        assert!(shard.logical_qubits.len() <= 20);
    }
    // The stitched plan must prove out: coupling legality per member
    // device and semantic equivalence to the input.
    let report = plan.verify(&circuit, &fleet).unwrap();
    assert_eq!(report.shards, 2);
    assert_eq!(report.gates_replayed, circuit.num_gates());
    assert_eq!(report.cut_gates, plan.cuts.len());
    assert_eq!(report.swaps_replayed, plan.total_swaps());

    // Cut accounting: every cross-shard interaction of the partition is
    // a scheduled cut, priced by the knob.
    let expected_cuts = circuit
        .two_qubit_pairs()
        .iter()
        .filter(|(a, b)| {
            let shard_of = |q: Qubit| {
                plan.shards
                    .iter()
                    .position(|s| s.logical_qubits.contains(&q))
                    .unwrap()
            };
            shard_of(*a) != shard_of(*b)
        })
        .count();
    assert_eq!(plan.cuts.len(), expected_cuts);
    assert_eq!(
        plan.modeled_cut_cost(),
        plan.cut_cost * plan.cuts.len() as f64
    );
}

#[test]
fn fixed_seed_plans_are_bit_identical_cold_and_warm() {
    let circuit = random_circuit(28, 220, 0.85, 99);
    let config = fast_shard_config(13);

    // Same cache (warm second call), fresh cache, fresh fleet: all three
    // must serialize to exactly the same bytes.
    let fleet = two_tokyo_fleet();
    let cache = DeviceCache::new();
    let first = route_sharded(&circuit, &fleet, &config, &cache).unwrap();
    let warm = route_sharded(&circuit, &fleet, &config, &cache).unwrap();
    let cold = route_sharded(&circuit, &two_tokyo_fleet(), &config, &DeviceCache::new()).unwrap();
    let reference = first.to_json().to_compact();
    assert_eq!(warm.to_json().to_compact(), reference);
    assert_eq!(cold.to_json().to_compact(), reference);

    // A different seed is allowed to (and here does) shard differently.
    let other = route_sharded(&circuit, &fleet, &fast_shard_config(14), &cache).unwrap();
    assert_ne!(other.to_json().to_compact(), reference);
}

#[test]
fn noise_aware_members_route_and_verify() {
    let graph_a = devices::ibm_q20_tokyo().graph().clone();
    let graph_b = devices::grid(4, 5).graph().clone();
    let mut fleet = Fleet::new();
    fleet
        .register_with_noise(
            "tokyo-noisy",
            graph_a.clone(),
            NoiseModel::calibrated(&graph_a, 0.02, 4.0, 5),
        )
        .unwrap();
    fleet.register("grid", graph_b).unwrap();
    let cache = DeviceCache::new();
    let circuit = random_circuit(32, 250, 0.8, 31);
    let plan = route_sharded(&circuit, &fleet, &fast_shard_config(3), &cache).unwrap();
    assert_eq!(plan.shards.len(), 2);
    plan.verify(&circuit, &fleet).unwrap();
}

#[test]
fn heterogeneous_fleet_prefers_enough_capacity_with_fewest_shards() {
    let mut fleet = Fleet::new();
    fleet
        .register("small", devices::linear(5).graph().clone())
        .unwrap();
    fleet
        .register("big", devices::grid(5, 6).graph().clone())
        .unwrap();
    let cache = DeviceCache::new();
    // Fits the 30-qubit grid alone: one shard, zero cuts.
    let narrow = random_circuit(25, 120, 0.8, 8);
    let plan = route_sharded(&narrow, &fleet, &fast_shard_config(1), &cache).unwrap();
    assert_eq!(plan.shards.len(), 1);
    assert_eq!(plan.shards[0].member, "big");
    assert!(plan.cuts.is_empty());
    plan.verify(&narrow, &fleet).unwrap();

    // 32 qubits need both devices.
    let wide = random_circuit(32, 150, 0.8, 9);
    let plan = route_sharded(&wide, &fleet, &fast_shard_config(1), &cache).unwrap();
    assert_eq!(plan.shards.len(), 2);
    plan.verify(&wide, &fleet).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The partitioner never overfills a device and always covers every
    /// qubit, for arbitrary circuits and arbitrary capacity splits.
    #[test]
    fn partitioner_never_exceeds_device_capacity(
        n in 2u32..=24,
        gates in 0usize..120,
        circuit_seed in any::<u64>(),
        partition_seed in any::<u64>(),
        extra_a in 0u32..6,
        extra_b in 0u32..6,
    ) {
        let circuit = random_circuit(n, gates, 0.7, circuit_seed);
        let interaction = InteractionGraph::of(&circuit);
        // Two shards whose combined capacity just covers the register.
        let cap_a = n / 2 + extra_a;
        let cap_b = n - n / 2 + extra_b;
        let specs = [
            ShardSpec { capacity: cap_a, score: 2.0 },
            ShardSpec { capacity: cap_b, score: 3.0 },
        ];
        let p = partition(&interaction, &specs, 30.0, 8, partition_seed);
        prop_assert_eq!(p.assignment.len(), n as usize);
        for (s, spec) in specs.iter().enumerate() {
            let size = p.assignment.iter().filter(|&&a| a == s).count();
            prop_assert!(size <= spec.capacity as usize,
                "shard {} holds {} qubits with capacity {}", s, size, spec.capacity);
        }
        prop_assert!(p.assignment.iter().all(|&s| s < 2));
    }

    /// Every sharded plan verifies: per-shard coupling legality plus
    /// stitched semantic equivalence, whatever the circuit.
    #[test]
    fn sharded_plans_always_verify(
        n in 21u32..=36,
        gates in 1usize..150,
        circuit_seed in any::<u64>(),
        route_seed in any::<u64>(),
    ) {
        let fleet = two_tokyo_fleet();
        let cache = DeviceCache::new();
        let circuit = random_circuit(n, gates, 0.75, circuit_seed);
        let plan = route_sharded(&circuit, &fleet, &fast_shard_config(route_seed), &cache).unwrap();
        prop_assert!(plan.shards.len() >= 2); // n > 20 forces sharding
        let report = plan.verify(&circuit, &fleet);
        prop_assert!(report.is_ok(), "verification failed: {:?}", report.err());
    }
}

// ---------------------------------------------------------------------
// Loopback e2e: POST /route_sharded against a live server.
// ---------------------------------------------------------------------

#[test]
fn route_sharded_endpoint_matches_direct_library_call() {
    let handle = sabre_serve::start(sabre_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..sabre_serve::ServeConfig::default()
    })
    .expect("start loopback server");
    let addr = handle.addr();

    // Register the two devices, then a named fleet over them.
    for id in ["chip-a", "chip-b"] {
        let (status, _) = post_json(
            addr,
            "/devices",
            &JsonValue::object([("id", id.into()), ("builtin", "tokyo20".into())]),
        );
        assert_eq!(status, 201);
    }
    let (status, registered) = post_json(
        addr,
        "/fleets",
        &JsonValue::object([
            ("id", "duo".into()),
            (
                "devices",
                JsonValue::array(["chip-a".into(), "chip-b".into()]),
            ),
        ]),
    );
    assert_eq!(status, 201, "{registered}");

    // A 26-qubit circuit: wider than one chip, fits the fleet.
    let circuit = random_circuit(26, 180, 0.8, 55);
    let seed = 4242u64;
    let body = JsonValue::object([
        ("fleet", "duo".into()),
        (
            "circuit",
            JsonValue::object([
                ("qasm", sabre_qasm::to_qasm(&circuit).into()),
                ("name", circuit.name().into()),
            ]),
        ),
        (
            "config",
            JsonValue::object([("seed", seed.into()), ("trials", 1u64.into())]),
        ),
        ("cut_cost", 25.0.into()),
    ]);
    let (status, response) = post_json(addr, "/route_sharded", &body);
    assert_eq!(status, 200, "{response}");
    assert_eq!(response.get("verified").unwrap().as_bool(), Some(true));
    assert_eq!(response.get("seed").unwrap().as_u64(), Some(seed));

    // The served plan must equal the direct library call byte for byte.
    let mut fleet = Fleet::new();
    fleet
        .register("chip-a", devices::ibm_q20_tokyo().graph().clone())
        .unwrap();
    fleet
        .register("chip-b", devices::ibm_q20_tokyo().graph().clone())
        .unwrap();
    let config = ShardConfig {
        sabre: SabreConfig {
            seed,
            num_restarts: 1,
            ..SabreConfig::default()
        },
        cut_cost: Some(25.0),
        ..ShardConfig::default()
    };
    let direct = route_sharded(&circuit, &fleet, &config, &DeviceCache::new()).unwrap();
    assert_eq!(
        response.get("plan").unwrap().to_compact(),
        direct.to_json().to_compact(),
        "served plan must be byte-identical to the direct library call"
    );

    // An inline device list resolves to the same plan as the named fleet.
    let mut inline = body.clone();
    if let JsonValue::Object(pairs) = &mut inline {
        pairs.retain(|(k, _)| k != "fleet");
        pairs.insert(
            0,
            (
                "devices".into(),
                JsonValue::array(["chip-a".into(), "chip-b".into()]),
            ),
        );
    }
    let (status, via_devices) = post_json(addr, "/route_sharded", &inline);
    assert_eq!(status, 200);
    assert_eq!(
        via_devices.get("plan").unwrap().to_compact(),
        direct.to_json().to_compact(),
    );

    // Validation: unknown fleet, oversized circuit, bad cut cost.
    let (status, _) = post_json(
        addr,
        "/route_sharded",
        &JsonValue::object([
            ("fleet", "ghost".into()),
            (
                "circuit",
                JsonValue::object([("qasm", sabre_qasm::to_qasm(&circuit).into())]),
            ),
        ]),
    );
    assert_eq!(status, 404);
    let too_wide = random_circuit(60, 10, 0.8, 1);
    let (status, response) = post_json(
        addr,
        "/route_sharded",
        &JsonValue::object([
            ("fleet", "duo".into()),
            (
                "circuit",
                JsonValue::object([("qasm", sabre_qasm::to_qasm(&too_wide).into())]),
            ),
        ]),
    );
    assert_eq!(status, 422, "{response}");
    let (status, _) = post_json(
        addr,
        "/route_sharded",
        &JsonValue::object([
            ("fleet", "duo".into()),
            (
                "circuit",
                JsonValue::object([("qasm", sabre_qasm::to_qasm(&circuit).into())]),
            ),
            ("cut_cost", (-3.0).into()),
        ]),
    );
    assert_eq!(status, 400);

    handle.shutdown();
}
