//! End-to-end suite for the plan-quality telemetry layer: the
//! [`sabre::PlanQuality`] report, sharded cut accounting, the serving
//! layer's `"quality"` response object and `/debug/quality` scoreboard,
//! and the `?limit` validation on `/debug/traces`.
//!
//! Pins this PR's acceptance criteria:
//! - quality math matches a hand-computed fixture exactly (swaps, gate
//!   counts, depth overhead, log-success-probability under a known
//!   uniform noise model);
//! - sharded quality accounts for every original gate: per-shard local
//!   circuits plus cross-shard cuts conserve the 2q-gate count, and the
//!   swap totals agree with the plan;
//! - a plan-cache hit returns **byte-identical** quality to the original
//!   miss — the cached skeleton's report, not a recomputation;
//! - `/debug/quality` aggregates per device and `/metrics` exposes the
//!   swap/depth/fidelity histograms;
//! - `quality(route(c))` agrees with the router's own counters across
//!   seeds (proptest), including `swaps == total_search_steps` for a
//!   single-traversal search.

use std::net::SocketAddr;

mod common;
use common::{get_json, http, post_json};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sabre::router::route_pass;
use sabre::{Layout, PlanQuality, SabreConfig, SabreRouter};
use sabre_benchgen::random;
use sabre_circuit::{Circuit, Qubit};
use sabre_json::JsonValue;
use sabre_qasm::to_qasm;
use sabre_serve::{start, ServeConfig, ServerHandle};
use sabre_shard::{route_sharded, Fleet, ShardConfig};
use sabre_topology::noise::NoiseModel;
use sabre_topology::{devices, WeightedDistanceMatrix};

fn server(config: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("start loopback server")
}

fn register(addr: SocketAddr, id: &str, builtin: &str) {
    let (status, _) = post_json(
        addr,
        "/devices",
        &JsonValue::object([("id", id.into()), ("builtin", builtin.into())]),
    );
    assert_eq!(status, 201, "registering {builtin}");
}

fn route_body(device: &str, circuit: &Circuit, seed: u64) -> JsonValue {
    JsonValue::object([
        ("device", device.into()),
        (
            "circuit",
            JsonValue::object([("qasm", to_qasm(circuit).into())]),
        ),
        (
            "config",
            JsonValue::object([("seed", seed.into()), ("trials", 1u64.into())]),
        ),
    ])
}

#[test]
fn quality_math_matches_hand_computation() {
    // cx(0,2) on a 3-qubit line from the **identity** layout (a single
    // forward `route_pass`, so the initial-mapping search cannot dodge
    // the swap): exactly one SWAP brings the operands adjacent, and every
    // field is computable by hand.
    let graph = devices::linear(3).graph().clone();
    let mut circuit = Circuit::new(3);
    circuit.cx(Qubit(0), Qubit(2));
    let config = SabreConfig::fast();
    let dist = WeightedDistanceMatrix::auto(&graph, |_, _| 1.0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let routed = route_pass(
        &circuit,
        &graph,
        &dist,
        Layout::identity(3),
        &config,
        &mut rng,
    );
    assert_eq!(routed.num_swaps, 1, "one swap suffices on a line");

    // Two-qubit error 0.1, no single-qubit error: the decomposed output
    // is 1 CX + 3 CX (the swap), so log p = 4·ln(0.9).
    let noise = NoiseModel::uniform(&graph, 0.1, 0.0);
    let quality = PlanQuality::of_routed(&circuit, &routed, Some(&noise));
    assert_eq!(quality.num_swaps, 1);
    assert_eq!(quality.added_gates, 3);
    assert_eq!(quality.input_two_qubit_gates, 1);
    assert_eq!(quality.output_two_qubit_gates, 4);
    assert_eq!(quality.input_depth, 1);
    assert_eq!(quality.output_depth, 4);
    assert_eq!(quality.depth_overhead, 3);
    let expected = 4.0 * (0.9f64).ln();
    let lsp = quality.log_success_probability.expect("noise model given");
    assert!((lsp - expected).abs() < 1e-12, "{lsp} vs {expected}");

    // Hop-only scoring (no noise model) skips fidelity but keeps counts.
    let hops = PlanQuality::of_routed(&circuit, &routed, None);
    assert_eq!(hops.num_swaps, 1);
    assert!(hops.log_success_probability.is_none());
    assert!(hops
        .to_json()
        .to_compact()
        .contains("\"log_success_probability\":null"));
}

#[test]
fn sharded_quality_conserves_gates_and_swap_totals() {
    let mut fleet = Fleet::new();
    fleet
        .register("tokyo-a", devices::ibm_q20_tokyo().graph().clone())
        .unwrap();
    fleet
        .register("tokyo-b", devices::ibm_q20_tokyo().graph().clone())
        .unwrap();
    // Wider than either chip, so the partitioner must split and cut.
    let circuit = random::random_circuit(30, 400, 0.9, 0xf1ee7);
    let config = ShardConfig {
        sabre: SabreConfig::fast(),
        ..ShardConfig::default()
    };
    let cache = sabre::DeviceCache::new();
    let plan = route_sharded(&circuit, &fleet, &config, &cache).expect("sharded routing");
    let quality = plan.quality(&circuit, &fleet);

    assert_eq!(quality.cut_gates, plan.cuts.len());
    assert_eq!(quality.total_swaps, plan.total_swaps());
    assert_eq!(
        quality.total_swaps,
        quality
            .shards
            .iter()
            .map(|s| s.quality.num_swaps)
            .sum::<usize>()
    );
    assert_eq!(
        quality.total_added_gates,
        quality
            .shards
            .iter()
            .map(|s| s.quality.added_gates)
            .sum::<usize>()
    );
    assert_eq!(quality.shards.len(), plan.shards.len());
    // Conservation: every original 2q gate is either local to a shard or
    // a cut — nothing vanishes, nothing is double-counted.
    assert_eq!(
        quality
            .shards
            .iter()
            .map(|s| s.quality.input_two_qubit_gates)
            .sum::<usize>()
            + quality.cut_gates,
        circuit.num_two_qubit_gates()
    );
    // No member has calibration data, so fleet-level fidelity is absent.
    assert!(quality.log_success_probability.is_none());
    // The JSON report is deterministic.
    assert_eq!(
        quality.to_json().to_compact(),
        plan.quality(&circuit, &fleet).to_json().to_compact()
    );
}

#[test]
fn serve_reports_quality_end_to_end_and_hits_reuse_it_byte_identically() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "tokyo", "tokyo20");
    // Calibration makes the fidelity leg of the report light up.
    let noise_spec = JsonValue::object([
        ("two_qubit_error", 0.01.into()),
        ("single_qubit_error", 0.001.into()),
    ]);
    let (status, _) = post_json(addr, "/devices/tokyo/noise", &noise_spec);
    assert_eq!(status, 200);

    let mut circuit = Circuit::new(8);
    for r in 0..20u32 {
        circuit.cx(Qubit((r * 3 + 1) % 8), Qubit((r * 5 + 2) % 8));
        circuit.rz(Qubit(r % 8), 0.25 + f64::from(r));
    }
    let body = route_body("tokyo", &circuit, 7);

    let (status, miss) = post_json(addr, "/route", &body);
    assert_eq!(status, 200);
    assert_eq!(miss.get("plan_cache").unwrap().as_str(), Some("miss"));
    let miss_quality = miss.get("quality").expect("route response carries quality");
    let swaps = miss_quality.get("num_swaps").unwrap().as_u64().unwrap();
    assert_eq!(
        miss_quality.get("added_gates").unwrap().as_u64().unwrap(),
        3 * swaps
    );
    assert!(miss_quality
        .get("depth_overhead")
        .unwrap()
        .as_u64()
        .is_some());
    let lsp = miss_quality
        .get("log_success_probability")
        .unwrap()
        .as_f64()
        .expect("calibrated device reports fidelity");
    assert!(lsp < 0.0, "log-probability of a noisy circuit is negative");

    // Same structure again: an inline plan-cache hit serving the cached
    // skeleton's quality — byte-identical to the miss, zero recompute.
    let (status, hit) = post_json(addr, "/route", &body);
    assert_eq!(status, 200);
    assert_eq!(hit.get("plan_cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        hit.get("quality").unwrap().to_compact(),
        miss_quality.to_compact(),
        "a hit must reuse the cached quality report"
    );

    // The scoreboard aggregated both requests under the device id.
    let (status, board) = get_json(addr, "/debug/quality");
    assert_eq!(status, 200);
    let devices_list = board.get("devices").and_then(JsonValue::as_array).unwrap();
    let tokyo = devices_list
        .iter()
        .find(|d| d.get("device").and_then(JsonValue::as_str) == Some("tokyo"))
        .expect("tokyo on the scoreboard");
    assert_eq!(tokyo.get("count").unwrap().as_u64(), Some(2));
    for section in ["swaps", "depth_overhead"] {
        let stats = tokyo.get(section).unwrap();
        for field in ["mean", "p50", "p95", "max"] {
            assert!(
                stats.get(field).and_then(JsonValue::as_f64).is_some()
                    || stats.get(field).and_then(JsonValue::as_u64).is_some(),
                "{section}.{field} missing: {stats}"
            );
        }
    }
    let fidelity = tokyo.get("log_success_probability").unwrap();
    assert_eq!(fidelity.get("count").unwrap().as_u64(), Some(2));
    assert!(fidelity.get("mean").unwrap().as_f64().unwrap() < 0.0);

    // The histograms and per-device counters are on /metrics.
    let (_, _, metrics) = http(addr, "GET", "/metrics", None);
    for family in [
        "sabre_serve_route_swaps_bucket",
        "sabre_serve_route_depth_overhead_bucket",
        "sabre_serve_route_log_success_probability_bucket",
    ] {
        assert!(metrics.contains(family), "missing {family}:\n{metrics}");
    }
    assert!(metrics.contains("sabre_serve_device_routes_total{device=\"tokyo\"} 2"));
    assert!(metrics.contains("sabre_serve_device_swaps_total{device=\"tokyo\"}"));

    // Every request is traced; exactly the two /route calls carry the
    // device id and quality annotations.
    let (status, traces) = get_json(addr, "/debug/traces");
    assert_eq!(status, 200);
    let items = traces.get("traces").and_then(JsonValue::as_array).unwrap();
    let routed: Vec<&JsonValue> = items
        .iter()
        .filter(|t| t.get("device").and_then(JsonValue::as_str) == Some("tokyo"))
        .collect();
    assert_eq!(routed.len(), 2, "both /route calls traced: {traces}");
    for trace in routed {
        assert!(trace.get("swaps").and_then(JsonValue::as_u64).is_some());
        assert!(trace
            .get("depth_overhead")
            .and_then(JsonValue::as_u64)
            .is_some());
    }
    handle.shutdown();
}

#[test]
fn debug_traces_limit_is_bounded_and_validated() {
    let handle = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    register(addr, "line", "linear:4");
    let mut circuit = Circuit::new(4);
    circuit.cx(Qubit(0), Qubit(3));
    for seed in 0..3u64 {
        let (status, _) = post_json(addr, "/route", &route_body("line", &circuit, seed));
        assert_eq!(status, 200);
    }

    // limit=1 returns only the newest trace; count still reports the
    // whole ring (every request is traced, including the registration).
    let (status, one) = get_json(addr, "/debug/traces?limit=1");
    assert_eq!(status, 200);
    assert_eq!(
        one.get("traces")
            .and_then(JsonValue::as_array)
            .unwrap()
            .len(),
        1
    );
    let count = one.get("count").unwrap().as_u64().unwrap();
    assert!(count >= 4, "3 routes + registration traced, got {count}");

    // A limit beyond the ring is harmless: the full snapshot comes back.
    let (status, all) = get_json(addr, "/debug/traces?limit=999");
    assert_eq!(status, 200);
    assert_eq!(
        all.get("traces")
            .and_then(JsonValue::as_array)
            .unwrap()
            .len() as u64,
        all.get("count").unwrap().as_u64().unwrap()
    );

    // Zero and non-numeric limits are client errors, not panics.
    for bad in ["/debug/traces?limit=0", "/debug/traces?limit=abc"] {
        let (status, _) = get_json(addr, bad);
        assert_eq!(status, 400, "{bad} must be rejected");
    }
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `quality(route(c))` agrees with the router's own counters on any
    /// seed: swap count, added gates, gate conservation, depth ordering —
    /// and for a single-traversal search, swaps == total search steps
    /// (every search step inserts exactly one SWAP).
    #[test]
    fn quality_is_consistent_with_routing_across_seeds(
        seed in any::<u64>(),
        n in 4u32..=16,
        gates in 1usize..120,
    ) {
        let graph = devices::ibm_q20_tokyo().graph().clone();
        let circuit = random::random_circuit(n, gates, 0.7, seed);
        let config = SabreConfig {
            num_restarts: 1,
            num_traversals: 1,
            // No initial-mapping probe: its trial routings would count
            // into total_search_steps without inserting surviving swaps.
            embedding_probe_budget: 0,
            ..SabreConfig::fast()
        };
        let router = SabreRouter::new(graph.clone(), config).unwrap();
        let result = router.route(&circuit).unwrap();
        let quality = PlanQuality::of_result(&circuit, &result, None);

        prop_assert_eq!(quality.num_swaps, result.best.num_swaps);
        prop_assert_eq!(quality.num_swaps, result.total_search_steps());
        prop_assert_eq!(quality.added_gates, result.added_gates());
        prop_assert_eq!(
            quality.output_two_qubit_gates,
            quality.input_two_qubit_gates + 3 * quality.num_swaps
        );
        prop_assert!(quality.output_depth >= quality.input_depth);
        prop_assert_eq!(
            quality.depth_overhead,
            quality.output_depth - quality.input_depth
        );
        // Same seed, same report — byte for byte.
        let again = router.route(&circuit).unwrap();
        prop_assert_eq!(
            PlanQuality::of_result(&circuit, &again, None).to_json().to_compact(),
            quality.to_json().to_compact()
        );
    }
}
