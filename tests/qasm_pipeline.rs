//! QASM ↔ IR ↔ router pipeline integration.

use sabre::{SabreConfig, SabreRouter};
use sabre_benchgen::registry;
use sabre_qasm::{parse, parse_program, to_qasm};
use sabre_topology::devices;
use sabre_verify::verify_routed;

/// Every registry benchmark round-trips through OpenQASM text exactly.
#[test]
fn registry_circuits_round_trip_through_qasm() {
    for spec in registry::table2() {
        if spec.paper.g_ori > 1200 {
            continue;
        }
        let circuit = spec.generate();
        let text = to_qasm(&circuit);
        let mut parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        parsed.set_name(spec.name); // names travel as comments, not semantics
        assert_eq!(parsed, circuit, "{}", spec.name);
    }
}

/// A circuit parsed from QASM routes and verifies like a generated one.
#[test]
fn parsed_circuit_routes_and_verifies() {
    let source = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg a[3];
        qreg b[3];
        creg c[6];
        h a;
        cx a[0], b[0];
        cx a[1], b[1];
        cx a[2], b[2];
        barrier a;
        rz(pi/4) b[0];
        cx a[0], b[2];
        cx b[0], a[2];
        measure a[0] -> c[0];
    "#;
    let program = parse_program(source).unwrap();
    assert_eq!(program.skipped_measurements, 1);
    assert_eq!(program.skipped_barriers, 1);
    assert_eq!(
        program.quantum_registers,
        vec![("a".to_string(), 3), ("b".to_string(), 3)]
    );

    let circuit = program.circuit;
    let device = devices::ibm_qx5();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::paper()).unwrap();
    let result = router.route(&circuit).unwrap();
    verify_routed(
        &circuit,
        &result.best.physical,
        result.best.initial_layout.logical_to_physical(),
        result.best.final_layout.logical_to_physical(),
        device.graph(),
    )
    .unwrap();
}

/// Routed output serializes to QASM that parses back to the same circuit.
#[test]
fn routed_output_round_trips() {
    let spec = registry::by_name("qft_10").unwrap();
    let circuit = spec.generate();
    let device = devices::ibm_q20_tokyo();
    let router = SabreRouter::new(device.graph().clone(), SabreConfig::fast()).unwrap();
    let routed = router.route(&circuit).unwrap().best;

    // With SWAPs kept as `swap` gates...
    let text = to_qasm(&routed.physical);
    let mut parsed = parse(&text).unwrap();
    parsed.set_name(routed.physical.name());
    assert_eq!(parsed, routed.physical);

    // ...and in the elementary set after decomposition.
    let decomposed = routed.decomposed();
    let text = to_qasm(&decomposed);
    let reparsed = parse(&text).unwrap();
    assert_eq!(reparsed.num_swaps(), 0);
    assert_eq!(reparsed.num_gates(), decomposed.num_gates());
}
