//! Offline shim for the `rand` crate (0.8-series API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* surface its members use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`]. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality and deterministic, though the
//! streams intentionally make no attempt to match upstream `rand` output
//! (nothing in this workspace depends on upstream streams; determinism is
//! only ever checked against our own seeds).
//!
//! Swapping back to the real crate is a one-line change in the root
//! `Cargo.toml` (`vendor/README.md` has the recipe); every API here is
//! call-compatible with `rand = "0.8"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core every adapter builds on.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator with a deterministic stream per seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 — the
    /// standard recommendation of the xoshiro authors.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(out.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (rejection-free Lemire reduction for
    /// integers, 53-bit mantissa scaling for floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` bits → uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce one uniform sample. Implemented for
/// `Range`/`RangeInclusive` of the integer types this workspace uses and
/// for `Range<f64>`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` via Lemire's widening-multiply
/// rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same algorithm as upstream `rand`'s `StdRng` (ChaCha12) —
    /// callers only rely on seed-determinism, which both provide.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let draws_a: Vec<u32> = (0..16).map(|_| a.gen_range(0..u32::MAX)).collect();
        let draws_c: Vec<u32> = (0..16).map(|_| c.gen_range(0..u32::MAX)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-3.2f64..3.2);
            assert!((-3.2..3.2).contains(&f));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
