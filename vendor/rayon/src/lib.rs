//! Offline shim for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the small parallel-iterator surface the workspace uses:
//! `par_iter()` / `into_par_iter()` → `map` → `collect`, plus
//! [`current_num_threads`] and [`join`]. Semantics match rayon where it
//! matters for callers:
//!
//! - `collect` preserves input order regardless of execution order;
//! - closures run concurrently on OS threads (a fresh scoped pool per
//!   call — coarse-grained tasks only, which is exactly how the SABRE
//!   trial loop uses it);
//! - `RAYON_NUM_THREADS` caps the worker count, like the real crate.
//!
//! Swapping back to the real crate is a one-line change in the root
//! `Cargo.toml`; every API here is call-compatible with `rayon = "1"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits that make `.par_iter()` / `.into_par_iter()` available.
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel call will use: the smaller of
/// `RAYON_NUM_THREADS` (if set and positive) and the machine parallelism.
pub fn current_num_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n.min(hw.max(1) * 4),
        _ => hw,
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: worker panicked"))
    })
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references, i.e. `par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The produced item type (a reference).
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel-iterate over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// The subset of rayon's `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// The item type.
    type Item: Send;

    /// Drain this iterator into an ordered `Vec`, running the pipeline's
    /// closures across worker threads.
    fn run(self) -> Vec<Self::Item>;

    /// Map each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Hint accepted for API compatibility; the shim always schedules one
    /// item at a time (tasks here are coarse).
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Collect into `C`, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Call `f` on every item (parallel for-each).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(f).run();
    }
}

/// Source iterator over an owned, already-materialized list of items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), &self.f)
    }
}

/// Order-preserving parallel map over `items`: workers pull indices from a
/// shared atomic counter (dynamic load balancing for uneven tasks, e.g.
/// routing circuits of very different sizes in one batch).
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("rayon shim: poisoned input slot")
                        .take()
                        .expect("rayon shim: item taken twice");
                    let out = f(item);
                    *results[i].lock().expect("rayon shim: poisoned output slot") = Some(out);
                })
            })
            .collect();
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("rayon shim: poisoned result")
                .expect("rayon shim: missing result")
        })
        .collect()
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = VecParIter<$t>;
            fn into_par_iter(self) -> VecParIter<$t> {
                VecParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<u64> = (0u64..1000).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_iter_over_slices() {
        let data = vec![3usize, 1, 4, 1, 5, 9, 2, 6];
        let doubled: Vec<usize> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10, 18, 4, 12]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            (0usize..64)
                .into_par_iter()
                .map(|i| {
                    if i == 33 {
                        panic!("boom");
                    }
                    i
                })
                .collect::<Vec<_>>()
        });
        assert!(result.is_err());
    }
}
