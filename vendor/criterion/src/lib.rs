//! Offline API-compatible subset of `criterion` 0.5 — see
//! `vendor/README.md` for why this exists and how to swap in the real
//! crate.
//!
//! Surface provided: [`Criterion`], [`BenchmarkGroup`] (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`] (`new` / `from_parameter`), [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. The command line honours `--test` (run every benchmark
//! exactly once, fail on panic — CI's rot check), bare substring
//! filters, and silently ignores the flags cargo and real criterion
//! pass around (`--bench`, etc.).
//!
//! Measurement is deliberately simple: warm up briefly, pick an
//! iteration count that makes one sample a few milliseconds, time a
//! bounded number of samples, and report the median. Good enough for
//! the relative claims this workspace documents (cold vs warm, engine A
//! vs engine B); not a statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-exported `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function/parameter`, matching real criterion's
/// display form.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("cold", "tokyo20")` → `cold/tokyo20`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter (`BenchmarkId::from_parameter(64)`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_count: usize,
    median_ns: Option<u128>,
}

impl Bencher {
    /// Times `f` (or runs it exactly once in `--test` mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: run for ~20ms to stabilize caches and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_ns = (warm_start.elapsed().as_nanos() / u128::from(warm_iters)).max(1);
        // One sample ≈ 2ms of work (at least one iteration).
        let iters_per_sample = (2_000_000 / per_iter_ns).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() / u128::from(iters_per_sample));
        }
        samples.sort_unstable();
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim bounds its own sample
    /// count at 20 regardless (measurement here is a smoke-grade median,
    /// not a statistics engine).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.clamp(2, 20);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&label) {
            return self;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_count: self.sample_count,
            median_ns: None,
        };
        f(&mut bencher);
        self.criterion.report(&label, bencher.median_ns);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (purely cosmetic in the shim).
    pub fn finish(&mut self) {}
}

/// Shim driver: owns the CLI mode and prints one line per benchmark.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
}

impl Criterion {
    /// Builds a driver from `std::env::args`: `--test` switches to
    /// run-once mode, bare words are substring filters, every `--flag`
    /// real criterion or cargo might pass is ignored (flags with values
    /// consume their value).
    pub fn configure_from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Value-carrying flags real criterion accepts: skip both.
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--save-baseline"
                | "--baseline" | "--load-baseline" | "--output-format" | "--color" => {
                    let _ = args.next();
                }
                flag if flag.starts_with('-') => {}
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 10,
            criterion: self,
        }
    }

    /// Top-level single benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        if self.matches(&label) {
            let mut bencher = Bencher {
                test_mode: self.test_mode,
                sample_count: 10,
                median_ns: None,
            };
            f(&mut bencher);
            let median = bencher.median_ns;
            self.report(&label, median);
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| label.contains(f))
    }

    fn report(&self, label: &str, median_ns: Option<u128>) {
        if self.test_mode {
            println!("{label}: ok (test mode)");
        } else {
            match median_ns {
                Some(ns) => println!("{label}: median {ns} ns/iter"),
                None => println!("{label}: no measurement (empty bench body)"),
            }
        }
    }
}

/// Declares a group function `$name` running each `$target(c)` in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main`: parse args, run every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::configure_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_real_criterion() {
        assert_eq!(
            BenchmarkId::new("cold", "tokyo20").to_string(),
            "cold/tokyo20"
        );
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            test_mode: true,
            filters: Vec::new(),
        };
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("one", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let c = Criterion {
            test_mode: true,
            filters: vec!["warm".to_string()],
        };
        assert!(c.matches("router_acquisition/warm/tokyo20"));
        assert!(!c.matches("router_acquisition/cold/tokyo20"));
    }
}
