//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the property-testing surface the workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range and tuple
//! strategies, [`prop_map`](strategy::Strategy::prop_map),
//! [`collection::vec`], [`arbitrary::any`], and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, on purpose:
//!
//! - **no shrinking** — a failing case prints its case index and the
//!   generated input values to stderr (alongside the panic message)
//!   instead of a minimized counterexample;
//! - **deterministic seeding** — each test derives its RNG seed from the
//!   test's name, so CI failures reproduce locally by just re-running
//!   (set `PROPTEST_RNG_SEED` to explore different streams).
//!
//! Swapping back to the real crate is a one-line change in the root
//! `Cargo.toml`; every API here is call-compatible with `proptest = "1"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod test_runner {
    //! Execution of property tests: configuration and the case loop.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases to run per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives one property: owns the RNG and the case budget.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Build a runner whose RNG seed derives from `test_name` (stable
        /// across runs) xor the optional `PROPTEST_RNG_SEED` env override.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            // FNV-1a: no external hashing dependency, stable across runs.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Some(extra) = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                seed ^= extra;
            }
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// Number of cases this runner will generate.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG strategies sample from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies per type.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Full-domain strategy for `T`; obtain via [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The strategy generating any value of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut StdRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn sample(&self, rng: &mut StdRng) -> u32 {
            rng.next_u32()
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Assert a condition inside a property; formats like [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property; formats like [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Assert inequality inside a property; formats like [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                for __proptest_case in 0..runner.cases() {
                    let __proptest_values = (
                        $($crate::strategy::Strategy::sample(&($strat), runner.rng()),)*
                    );
                    let __proptest_inputs = format!("{:?}", __proptest_values);
                    let ($($pat,)*) = __proptest_values;
                    if let Err(payload) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    ) {
                        eprintln!(
                            "proptest: {} failed on case #{} with inputs {}",
                            stringify!($name),
                            __proptest_case,
                            __proptest_inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x * 2, y * 3)),
            seed in any::<u64>(),
        ) {
            prop_assert_eq!(a % 2, 0);
            prop_assert_eq!(b % 3, 0);
            let _ = seed;
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u32..5, 0..9)) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::with_cases(1);
        let mut r1 = TestRunner::new(cfg.clone(), "some_test");
        let mut r2 = TestRunner::new(cfg, "some_test");
        let s = 0u64..u64::MAX;
        assert_eq!(s.sample(r1.rng()), s.sample(r2.rng()));
    }
}
